// Package units defines the bandwidth and size units used throughout the
// storage-QoS system, together with parsing and formatting helpers.
//
// The paper quotes disk bandwidth in Mbit/s ("128Mbps, i.e. 16MB/s") and file
// sizes in bytes; internally every rate is carried as bytes per second in a
// float64 so that the bandwidth ledger can integrate allocation trajectories
// exactly without unit juggling at call sites.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// BytesPerSec is a bandwidth in bytes per second.
type BytesPerSec float64

// Size is a data size in bytes.
type Size int64

// Common rate constructors. The paper's topology is specified in Mbit/s, so
// Mbps is the constructor used by nearly all configuration code.
const (
	// KB, MB, GB are decimal (SI) sizes, matching how disk vendors and the
	// paper quote capacities (1 TB disk, 16 GB virtual disk).
	KB Size = 1000
	MB Size = 1000 * KB
	GB Size = 1000 * MB

	// KiB, MiB, GiB are binary sizes, used by the block-device layer.
	KiB Size = 1024
	MiB Size = 1024 * KiB
	GiB Size = 1024 * MiB
)

// Mbps converts megabits per second to BytesPerSec.
// The paper equates 128 Mbit/s with 16 MB/s, i.e. decimal megabits.
func Mbps(v float64) BytesPerSec { return BytesPerSec(v * 1e6 / 8) }

// Kbps converts kilobits per second to BytesPerSec.
func Kbps(v float64) BytesPerSec { return BytesPerSec(v * 1e3 / 8) }

// MBps converts megabytes per second to BytesPerSec.
func MBps(v float64) BytesPerSec { return BytesPerSec(v * 1e6) }

// ToMbps reports the rate in megabits per second.
func (b BytesPerSec) ToMbps() float64 { return float64(b) * 8 / 1e6 }

// ToMBps reports the rate in megabytes per second.
func (b BytesPerSec) ToMBps() float64 { return float64(b) / 1e6 }

// IsZero reports whether the rate is exactly zero.
func (b BytesPerSec) IsZero() bool { return b == 0 }

// String formats the rate with an adaptive unit, e.g. "18.00 Mbit/s".
func (b BytesPerSec) String() string {
	bits := float64(b) * 8
	switch {
	case math.Abs(bits) >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", bits/1e9)
	case math.Abs(bits) >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", bits/1e6)
	case math.Abs(bits) >= 1e3:
		return fmt.Sprintf("%.2f kbit/s", bits/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", bits)
	}
}

// String formats the size with an adaptive decimal unit, e.g. "1.50 GB".
func (s Size) String() string {
	v := float64(s)
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.2f GB", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.2f MB", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.2f kB", v/1e3)
	default:
		return fmt.Sprintf("%d B", int64(v))
	}
}

// Bytes returns the size as an int64 byte count.
func (s Size) Bytes() int64 { return int64(s) }

// ParseRate parses strings such as "18Mbps", "1.8 Mbit/s", "16MB/s",
// "2048Kbps" or a bare number of bytes per second ("2250000").
func ParseRate(s string) (BytesPerSec, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty rate")
	}
	lower := strings.ToLower(t)
	type suffix struct {
		name string
		conv func(float64) BytesPerSec
	}
	// Longer suffixes first so "mbit/s" is not shadowed by "b/s".
	suffixes := []suffix{
		{"gbit/s", func(v float64) BytesPerSec { return Mbps(v * 1000) }},
		{"mbit/s", Mbps},
		{"kbit/s", Kbps},
		{"gbps", func(v float64) BytesPerSec { return Mbps(v * 1000) }},
		{"mbps", Mbps},
		{"kbps", Kbps},
		{"gb/s", func(v float64) BytesPerSec { return MBps(v * 1000) }},
		{"mb/s", MBps},
		{"kb/s", func(v float64) BytesPerSec { return BytesPerSec(v * 1e3) }},
		{"b/s", func(v float64) BytesPerSec { return BytesPerSec(v) }},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(lower, sf.name) {
			num := strings.TrimSpace(lower[:len(lower)-len(sf.name)])
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad rate %q: %w", s, err)
			}
			return sf.conv(v), nil
		}
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad rate %q: %w", s, err)
	}
	return BytesPerSec(v), nil
}

// ParseSize parses strings such as "4MB", "16 GB", "512KiB" or a bare byte
// count.
func ParseSize(s string) (Size, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	lower := strings.ToLower(t)
	type suffix struct {
		name string
		mult float64
	}
	suffixes := []suffix{
		{"gib", float64(GiB)},
		{"mib", float64(MiB)},
		{"kib", float64(KiB)},
		{"gb", float64(GB)},
		{"mb", float64(MB)},
		{"kb", float64(KB)},
		{"b", 1},
	}
	for _, sf := range suffixes {
		if strings.HasSuffix(lower, sf.name) {
			num := strings.TrimSpace(lower[:len(lower)-len(sf.name)])
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: bad size %q: %w", s, err)
			}
			return Size(math.Round(v * sf.mult)), nil
		}
	}
	v, err := strconv.ParseFloat(lower, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad size %q: %w", s, err)
	}
	return Size(math.Round(v)), nil
}

// DurationSec returns how many seconds a transfer of size s takes at rate b.
// A non-positive rate yields +Inf, which callers treat as "never completes".
func DurationSec(s Size, b BytesPerSec) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(s) / float64(b)
}
