package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMbpsMatchesPaperEquivalence(t *testing.T) {
	// The paper states 128 Mbit/s == 16 MB/s.
	if got := Mbps(128).ToMBps(); got != 16 {
		t.Fatalf("Mbps(128) = %v MB/s, want 16", got)
	}
	if got := Mbps(18); math.Abs(float64(got)-2.25e6) > 1e-9 {
		t.Fatalf("Mbps(18) = %v B/s, want 2.25e6", float64(got))
	}
}

func TestKbpsAndMBps(t *testing.T) {
	if got := Kbps(8000); got != Mbps(8) {
		t.Fatalf("Kbps(8000)=%v want %v", got, Mbps(8))
	}
	if got := MBps(2); float64(got) != 2e6 {
		t.Fatalf("MBps(2)=%v want 2e6", float64(got))
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   BytesPerSec
		want string
	}{
		{Mbps(18), "18.00 Mbit/s"},
		{Mbps(1800), "1.80 Gbit/s"},
		{Kbps(500), "500.00 kbit/s"},
		{BytesPerSec(10), "80 bit/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%v B/s) = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestSizeString(t *testing.T) {
	cases := []struct {
		in   Size
		want string
	}{
		{1500 * MB, "1.50 GB"},
		{4 * MB, "4.00 MB"},
		{2 * KB, "2.00 kB"},
		{999, "999 B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want BytesPerSec
	}{
		{"18Mbps", Mbps(18)},
		{"1.8 Mbit/s", Mbps(1.8)},
		{"16MB/s", MBps(16)},
		{"128 mbps", Mbps(128)},
		{"2048Kbps", Kbps(2048)},
		{"0.5Gbps", Mbps(500)},
		{"2250000", BytesPerSec(2250000)},
		{"12 kbit/s", Kbps(12)},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseRate(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestParseRateErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12xy/s", "Mbps"} {
		if _, err := ParseRate(in); err == nil {
			t.Errorf("ParseRate(%q): expected error", in)
		}
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want Size
	}{
		{"4MB", 4 * MB},
		{"16 GB", 16 * GB},
		{"512KiB", 512 * KiB},
		{"1GiB", GiB},
		{"100", 100},
		{"2.5kb", 2500},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if err != nil {
			t.Errorf("ParseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseSizeErrors(t *testing.T) {
	for _, in := range []string{"", "big", "MB"} {
		if _, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q): expected error", in)
		}
	}
}

func TestDurationSec(t *testing.T) {
	// 4 MB at 16 MB/s takes 0.25 s.
	if got := DurationSec(4*MB, MBps(16)); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("DurationSec = %v, want 0.25", got)
	}
	if got := DurationSec(MB, 0); !math.IsInf(got, 1) {
		t.Fatalf("DurationSec at zero rate = %v, want +Inf", got)
	}
	if got := DurationSec(MB, -1); !math.IsInf(got, 1) {
		t.Fatalf("DurationSec at negative rate = %v, want +Inf", got)
	}
}

// Property: Mbps round-trips through ToMbps for all finite positive values.
func TestMbpsRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		v = math.Abs(v)
		if math.IsInf(v, 0) || math.IsNaN(v) || v > 1e12 {
			return true
		}
		got := Mbps(v).ToMbps()
		return math.Abs(got-v) <= 1e-9*math.Max(1, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing the String() form of a rate returns the original value
// within formatting precision.
func TestRateStringParseProperty(t *testing.T) {
	f := func(raw uint32) bool {
		r := Mbps(float64(raw%100000)/100 + 0.01)
		parsed, err := ParseRate(r.String())
		if err != nil {
			return false
		}
		return math.Abs(float64(parsed-r)) <= 0.01*math.Abs(float64(r))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
