package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

func testRM(t *testing.T) (*rm.RM, ecnp.Scheduler) {
	t.Helper()
	sched := ecnp.SimScheduler{S: simtime.NewScheduler()}
	node, err := rm.New(rm.Options{
		Info:        ecnp.RMInfo{ID: 4, Capacity: units.Mbps(18), StorageBytes: units.GB},
		Scheduler:   sched,
		Mapper:      mm.New(),
		History:     history.DefaultConfig(),
		Replication: replication.DefaultConfig(replication.Static()),
		Rand:        rng.New(1),
		Files: map[ids.FileID]rm.FileMeta{
			0: {Bitrate: units.Mbps(2), Size: 25 * units.MB, DurationSec: 100},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return node, sched
}

func TestRMStatsEndpoint(t *testing.T) {
	node, sched := testRM(t)
	node.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	srv := httptest.NewServer(NewRMHandler(node, nil, sched, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st RMStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "RM4" {
		t.Fatalf("id %q", st.ID)
	}
	if st.AllocatedBps != float64(units.Mbps(2)) {
		t.Fatalf("allocated %v", st.AllocatedBps)
	}
	if st.ActiveStreams != 1 || st.Opens != 1 {
		t.Fatalf("streams/opens = %d/%d", st.ActiveStreams, st.Opens)
	}
	if st.Files != 1 || st.StorageUsed != int64(25*units.MB) {
		t.Fatalf("files/storage = %d/%d", st.Files, st.StorageUsed)
	}
}

func TestHealthz(t *testing.T) {
	node, sched := testRM(t)
	srv := httptest.NewServer(NewRMHandler(node, nil, sched, nil, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestMMStatsEndpoint(t *testing.T) {
	mgr := mm.New()
	mgr.RegisterRM(ecnp.RMInfo{ID: 1, Capacity: units.Mbps(128), Addr: "10.0.0.1:9000"}, nil)
	mgr.RegisterRM(ecnp.RMInfo{ID: 2, Capacity: units.Mbps(18), Addr: "10.0.0.2:9000"}, nil)
	srv := httptest.NewServer(NewMMHandler(mgr, nil, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st MMStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.RMs) != 2 {
		t.Fatalf("%d RMs in stats", len(st.RMs))
	}
	if st.RMs[0].ID != "RM1" || st.RMs[0].Addr != "10.0.0.1:9000" {
		t.Fatalf("entry %+v", st.RMs[0])
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	node, sched := testRM(t)
	srv, addr, err := Serve("127.0.0.1:0", NewRMHandler(node, nil, sched, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server reachable after Close")
	}
}
