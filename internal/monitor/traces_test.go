package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
)

// fixedSpans builds a deterministic two-trace dump: trace 7 is a
// failover read (root + two segments on different RMs at contiguous
// offsets + one server span whose parent lives in another process), and
// trace 9 is a lone MM lookup.
func fixedSpans() []trace.Record {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	ms := func(d int) time.Duration { return time.Duration(d) * time.Millisecond }
	return []trace.Record{
		{Trace: 7, Span: 1, Name: "dfsc.read", Actor: "dfsc1", Outcome: "ok",
			RM: 2, File: 5, Bytes: 100, Start: t0, Dur: ms(40)},
		{Trace: 7, Span: 2, Parent: 1, Name: "dfsc.segment", Actor: "dfsc1", Outcome: "failover",
			RM: 1, File: 5, Request: 7, Offset: 0, Bytes: 60, Start: t0.Add(ms(1)), Dur: ms(10)},
		{Trace: 7, Span: 3, Parent: 1, Name: "dfsc.segment", Actor: "dfsc1", Outcome: "ok",
			RM: 2, File: 5, Request: 8, Offset: 60, Bytes: 40, Start: t0.Add(ms(20)), Dur: ms(15)},
		// A server-side span joined from the wire: its parent (span 99)
		// is in the RM process's ring, not this dump — it must surface at
		// the trace's top level, not vanish.
		{Trace: 7, Span: 4, Parent: 99, Name: "rm.stream", Actor: "rm2", Outcome: "ok",
			RM: 2, File: 5, Request: 8, Offset: 60, Bytes: 40, Start: t0.Add(ms(21)), Dur: ms(13)},
		{Trace: 9, Span: 5, Name: "mm.Lookup", Actor: "mm", Outcome: "ok",
			RM: ids.NoneRM, File: 5, Start: t0.Add(ms(50)), Dur: ms(2)},
	}
}

func TestFormatTimelineGolden(t *testing.T) {
	got := FormatTimeline("test", fixedSpans())
	want := strings.Join([]string{
		"actor test: 5 span(s)",
		"trace 7 — 4 span(s)",
		"  [+   0.000ms    40.000ms] dfsc.read      dfsc1  ok rm=RM2 file=file5 off=0 bytes=100",
		"  [+   1.000ms    10.000ms]   dfsc.segment   dfsc1  failover rm=RM1 file=file5 off=0 bytes=60",
		"  [+  20.000ms    15.000ms]   dfsc.segment   dfsc1  ok rm=RM2 file=file5 req=8 off=60 bytes=40",
		"  [+  21.000ms    13.000ms] rm.stream      rm2    ok rm=RM2 file=file5 req=8 off=60 bytes=40",
		"trace 9 — 1 span(s)",
		"  [+   0.000ms     2.000ms] mm.Lookup      mm     ok file=file5",
		"",
	}, "\n")
	if got != want {
		t.Errorf("timeline mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestFormatTimelineEmpty(t *testing.T) {
	if got := FormatTimeline("x", nil); got != "actor x: 0 span(s)\n" {
		t.Fatalf("empty timeline = %q", got)
	}
}

func newTestTracer(t *testing.T) *trace.Tracer {
	t.Helper()
	tr := trace.New(trace.Options{Actor: "test"})
	root := tr.StartRoot(7, "dfsc.read")
	tr.StartChild(root.Context(), "dfsc.segment").SetRM(1).SetOutcome("failover").End()
	root.SetOutcome("ok").End()
	tr.StartRoot(9, "dfsc.access").SetOutcome("error").End()
	return tr
}

func TestTraceHandlerJSON(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(newTestTracer(t)))
	defer srv.Close()

	var dump TraceDump
	getJSON(t, srv.URL+"/traces", &dump)
	if dump.Actor != "test" {
		t.Errorf("actor = %q, want test", dump.Actor)
	}
	if len(dump.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(dump.Spans))
	}
	// The exemplar store keeps the slowest root per outcome class.
	if len(dump.Exemplars["ok"]) != 1 || len(dump.Exemplars["error"]) != 1 {
		t.Errorf("exemplars = %v", dump.Exemplars)
	}

	// ?trace= filters to one trace ID.
	var one TraceDump
	getJSON(t, srv.URL+"/traces?trace=9", &one)
	if len(one.Spans) != 1 || one.Spans[0].Trace != 9 {
		t.Errorf("filtered spans = %+v", one.Spans)
	}

	resp, err := http.Get(srv.URL + "/traces?trace=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ?trace= id: status %d, want 400", resp.StatusCode)
	}
}

func TestTraceHandlerText(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(newTestTracer(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/traces?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"actor test: 3 span(s)", "trace 7 — 2 span(s)", "dfsc.read", "  dfsc.segment", "failover"} {
		if !strings.Contains(text, want) {
			t.Errorf("text timeline missing %q:\n%s", want, text)
		}
	}
}

// TestTraceHandlerNilTracer pins the no-tracer degradation: daemons
// without tracing still answer /traces with an empty, valid dump.
func TestTraceHandlerNilTracer(t *testing.T) {
	srv := httptest.NewServer(TraceHandler(nil))
	defer srv.Close()
	var dump TraceDump
	getJSON(t, srv.URL+"/traces", &dump)
	if len(dump.Spans) != 0 {
		t.Errorf("nil tracer served %d spans", len(dump.Spans))
	}
}

// TestDebugHandlerEndpoints smoke-checks the standalone -debug-addr
// handler: traces and the pprof index both answer 200.
func TestDebugHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewDebugHandler(newTestTracer(t)))
	defer srv.Close()
	for _, path := range []string{"/healthz", "/traces", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}
