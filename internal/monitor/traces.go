package monitor

// This file is the debug surface of the monitor: request traces and
// profiling. Both are attached to every daemon monitor handler (served
// on the existing -monitor address) and can additionally be served
// standalone on a separate -debug-addr via NewDebugHandler, for
// deployments that firewall the scrape port but want an operator-only
// debug port.

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
)

// TraceDump is the JSON shape of GET /traces.
type TraceDump struct {
	// Actor is the process name stamped on every span this daemon opened.
	Actor string `json:"actor"`
	// Spans is the current content of the span ring (unordered; the ring
	// overwrites oldest-first, so this is a sliding window of recent
	// activity).
	Spans []trace.Record `json:"spans"`
	// Exemplars holds the slowest root spans seen per outcome class —
	// these survive ring wraparound, so the worst request of each kind is
	// always retrievable.
	Exemplars map[string][]trace.Record `json:"exemplars"`
}

// TraceHandler serves GET /traces from tr. A nil tracer serves an empty
// dump, so daemons running without -trace still answer the endpoint.
func TraceHandler(tr *trace.Tracer) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		spans := tr.Snapshot()
		if q := r.URL.Query().Get("trace"); q != "" {
			id, err := strconv.ParseInt(q, 10, 64)
			if err != nil {
				http.Error(w, "trace: bad ?trace= id: "+err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, rec := range spans {
				if rec.Trace == ids.RequestID(id) {
					kept = append(kept, rec)
				}
			}
			spans = kept
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, FormatTimeline(tr.Actor(), spans))
			return
		}
		if spans == nil {
			spans = []trace.Record{} // JSON [] rather than null
		}
		ex := tr.Exemplars()
		if ex == nil {
			ex = map[string][]trace.Record{}
		}
		writeJSON(w, TraceDump{Actor: tr.Actor(), Spans: spans, Exemplars: ex})
	}
}

// FormatTimeline renders spans as a per-trace tree, one line per span,
// indented under its parent, with start offsets relative to the trace's
// earliest span. Traces are ordered by first start time; spans within a
// level by start time. Spans whose parent is not in the dump (the other
// half of the RPC lives in a different process's ring) surface at the
// top level of their trace.
func FormatTimeline(actor string, spans []trace.Record) string {
	var b strings.Builder
	fmt.Fprintf(&b, "actor %s: %d span(s)\n", actor, len(spans))
	if len(spans) == 0 {
		return b.String()
	}

	byTrace := map[ids.RequestID][]trace.Record{}
	for _, rec := range spans {
		byTrace[rec.Trace] = append(byTrace[rec.Trace], rec)
	}
	traceIDs := make([]ids.RequestID, 0, len(byTrace))
	for id := range byTrace {
		traceIDs = append(traceIDs, id)
	}
	sort.Slice(traceIDs, func(i, j int) bool {
		return earliest(byTrace[traceIDs[i]]).Before(earliest(byTrace[traceIDs[j]]))
	})

	for _, id := range traceIDs {
		recs := byTrace[id]
		t0 := earliest(recs)
		fmt.Fprintf(&b, "trace %d — %d span(s)\n", int64(id), len(recs))

		present := map[uint64]bool{}
		for _, rec := range recs {
			present[rec.Span] = true
		}
		children := map[uint64][]trace.Record{}
		var roots []trace.Record
		for _, rec := range recs {
			if rec.Parent != 0 && present[rec.Parent] {
				children[rec.Parent] = append(children[rec.Parent], rec)
			} else {
				roots = append(roots, rec)
			}
		}
		sortByStart(roots)
		for k := range children {
			sortByStart(children[k])
		}
		var walk func(rec trace.Record, depth int)
		walk = func(rec trace.Record, depth int) {
			writeSpanLine(&b, rec, t0, depth)
			for _, ch := range children[rec.Span] {
				walk(ch, depth+1)
			}
		}
		for _, rec := range roots {
			walk(rec, 0)
		}
	}
	return b.String()
}

func writeSpanLine(b *strings.Builder, rec trace.Record, t0 time.Time, depth int) {
	fmt.Fprintf(b, "  [+%8.3fms %9.3fms] %s%-14s %-6s",
		float64(rec.Start.Sub(t0))/float64(time.Millisecond),
		float64(rec.Dur)/float64(time.Millisecond),
		strings.Repeat("  ", depth), rec.Name, rec.Actor)
	if rec.Outcome != "" {
		fmt.Fprintf(b, " %s", rec.Outcome)
	}
	if rec.RM != ids.NoneRM {
		fmt.Fprintf(b, " rm=%v", rec.RM)
	}
	if rec.File != ids.NoneFile {
		fmt.Fprintf(b, " file=%v", rec.File)
	}
	if rec.Request != 0 && rec.Request != rec.Trace {
		fmt.Fprintf(b, " req=%d", int64(rec.Request))
	}
	if rec.Offset != 0 || rec.Bytes != 0 {
		fmt.Fprintf(b, " off=%d bytes=%d", rec.Offset, rec.Bytes)
	}
	b.WriteByte('\n')
}

func earliest(recs []trace.Record) time.Time {
	t := recs[0].Start
	for _, rec := range recs[1:] {
		if rec.Start.Before(t) {
			t = rec.Start
		}
	}
	return t
}

func sortByStart(recs []trace.Record) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
}

// AttachDebug mounts the debug surface — /traces and /debug/pprof/ — on
// mux. The pprof handlers are the stdlib ones, registered explicitly so
// the daemons never depend on http.DefaultServeMux.
func AttachDebug(mux *http.ServeMux, tr *trace.Tracer) {
	mux.HandleFunc("/traces", TraceHandler(tr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// NewDebugHandler builds a standalone debug handler (healthz + traces +
// pprof) for daemons serving their debug surface on a dedicated
// -debug-addr instead of (or in addition to) the monitor address.
func NewDebugHandler(tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	AttachDebug(mux, tr)
	return mux
}
