// Package monitor exposes the runtime state of the live daemons over
// HTTP/JSON: the paper's RM "maintain[s] the dynamic runtime information,
// e.g. the current remained storage bandwidth, of its host during the data
// communication" — this package makes that information observable, which
// is what the figures' utilization curves are drawn from in a live
// deployment.
//
// Endpoints:
//
//	GET /healthz     → 200 "ok"
//	GET /stats       → JSON snapshot (RM or MM flavour)
package monitor

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/rm"
	"dfsqos/internal/vdisk"
)

// RMStats is the JSON shape of an RM's /stats reply.
type RMStats struct {
	ID              string  `json:"id"`
	CapacityBps     float64 `json:"capacityBps"`
	AllocatedBps    float64 `json:"allocatedBps"`
	RemainingBps    float64 `json:"remainingBps"`
	FracRemaining   float64 `json:"fracRemaining"`
	ActiveStreams   int     `json:"activeStreams"`
	StorageBytes    int64   `json:"storageBytes"`
	StorageUsed     int64   `json:"storageUsed"`
	Files           int     `json:"files"`
	CFPs            int64   `json:"cfps"`
	Opens           int64   `json:"opens"`
	OpenRefusals    int64   `json:"openRefusals"`
	RepTriggers     int64   `json:"repTriggers"`
	RepTransfers    int64   `json:"repTransfers"`
	RepMigrations   int64   `json:"repMigrations"`
	OffersAccepted  int64   `json:"offersAccepted"`
	OffersRejected  int64   `json:"offersRejected"`
	GCEvictions     int64   `json:"gcEvictions"`
	VirtualTimeSecs float64 `json:"virtualTimeSecs"`
}

// NewRMHandler builds the HTTP handler for one RM daemon. disk may be nil.
func NewRMHandler(node *rm.RM, disk *vdisk.Disk, sched ecnp.Scheduler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		now := sched.Now()
		snap := node.Snapshot(now)
		st := node.Stats()
		info := node.Info()
		out := RMStats{
			ID:              info.ID.String(),
			CapacityBps:     float64(info.Capacity),
			AllocatedBps:    float64(snap.Allocated),
			RemainingBps:    float64(info.Capacity - snap.Allocated),
			FracRemaining:   float64(info.Capacity-snap.Allocated) / float64(info.Capacity),
			ActiveStreams:   snap.Streams,
			StorageBytes:    int64(info.StorageBytes),
			StorageUsed:     int64(node.StorageUsed()),
			Files:           node.NumFiles(),
			CFPs:            st.CFPs,
			Opens:           st.Opens,
			OpenRefusals:    st.OpenRefusals,
			RepTriggers:     st.RepTriggers,
			RepTransfers:    st.RepTransfers,
			RepMigrations:   st.RepMigrations,
			OffersAccepted:  st.OffersAccepted,
			OffersRejected:  st.OffersRejected,
			GCEvictions:     st.GCEvictions,
			VirtualTimeSecs: now.Seconds(),
		}
		if disk != nil {
			out.StorageUsed = int64(disk.Used())
		}
		writeJSON(w, out)
	})
	return mux
}

// MMStats is the JSON shape of the MM's /stats reply.
type MMStats struct {
	RMs []MMRMEntry `json:"rms"`
}

// MMRMEntry is one row of the global resource list.
type MMRMEntry struct {
	ID          string  `json:"id"`
	CapacityBps float64 `json:"capacityBps"`
	Addr        string  `json:"addr"`
}

// NewMMHandler builds the HTTP handler for the MM daemon.
func NewMMHandler(mapper ecnp.Mapper) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var out MMStats
		for _, info := range mapper.RMs() {
			out.RMs = append(out.RMs, MMRMEntry{
				ID:          info.ID.String(),
				CapacityBps: float64(info.Capacity),
				Addr:        info.Addr,
			})
		}
		writeJSON(w, out)
	})
	return mux
}

func healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts an HTTP server on addr with the handler and returns it
// together with the bound address. Callers stop it with Server.Close.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
