// Package monitor exposes the runtime state of the live daemons over
// HTTP/JSON: the paper's RM "maintain[s] the dynamic runtime information,
// e.g. the current remained storage bandwidth, of its host during the data
// communication" — this package makes that information observable, which
// is what the figures' utilization curves are drawn from in a live
// deployment.
//
// Endpoints:
//
//	GET /healthz        → 200 "ok"
//	GET /stats          → JSON snapshot (RM, MM, or DFSC flavour)
//	GET /metrics        → Prometheus text exposition (telemetry registry)
//	GET /traces         → span-ring dump + slow-request exemplars (JSON;
//	                      ?format=text renders a per-trace timeline,
//	                      ?trace=<id> filters to one request)
//	GET /debug/pprof/…  → stdlib profiling handlers
package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/rm"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/trace"
	"dfsqos/internal/vdisk"
)

// RMStats is the JSON shape of an RM's /stats reply.
type RMStats struct {
	ID              string  `json:"id"`
	CapacityBps     float64 `json:"capacityBps"`
	AllocatedBps    float64 `json:"allocatedBps"`
	RemainingBps    float64 `json:"remainingBps"`
	FracRemaining   float64 `json:"fracRemaining"`
	ActiveStreams   int     `json:"activeStreams"`
	StorageBytes    int64   `json:"storageBytes"`
	StorageUsed     int64   `json:"storageUsed"`
	Files           int     `json:"files"`
	CFPs            int64   `json:"cfps"`
	Opens           int64   `json:"opens"`
	OpenRefusals    int64   `json:"openRefusals"`
	RepTriggers     int64   `json:"repTriggers"`
	RepTransfers    int64   `json:"repTransfers"`
	RepMigrations   int64   `json:"repMigrations"`
	OffersAccepted  int64   `json:"offersAccepted"`
	OffersRejected  int64   `json:"offersRejected"`
	GCEvictions     int64   `json:"gcEvictions"`
	LeaseTTLSec     float64 `json:"leaseTTLSec"`
	LeaseExpiries   int64   `json:"leaseExpiries"`
	VirtualTimeSecs float64 `json:"virtualTimeSecs"`
}

// NewRMHandler builds the HTTP handler for one RM daemon. disk may be
// nil; reg may be nil, in which case /metrics serves an empty exposition;
// tr may be nil, in which case /traces serves an empty dump.
func NewRMHandler(node *rm.RM, disk *vdisk.Disk, sched ecnp.Scheduler, reg *telemetry.Registry, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	mux.Handle("/metrics", reg.Handler())
	AttachDebug(mux, tr)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		now := sched.Now()
		snap := node.Snapshot(now)
		st := node.Stats()
		info := node.Info()
		out := RMStats{
			ID:              info.ID.String(),
			CapacityBps:     float64(info.Capacity),
			AllocatedBps:    float64(snap.Allocated),
			RemainingBps:    float64(info.Capacity - snap.Allocated),
			FracRemaining:   float64(info.Capacity-snap.Allocated) / float64(info.Capacity),
			ActiveStreams:   snap.Streams,
			StorageBytes:    int64(info.StorageBytes),
			StorageUsed:     int64(node.StorageUsed()),
			Files:           node.NumFiles(),
			CFPs:            st.CFPs,
			Opens:           st.Opens,
			OpenRefusals:    st.OpenRefusals,
			RepTriggers:     st.RepTriggers,
			RepTransfers:    st.RepTransfers,
			RepMigrations:   st.RepMigrations,
			OffersAccepted:  st.OffersAccepted,
			OffersRejected:  st.OffersRejected,
			GCEvictions:     st.GCEvictions,
			LeaseTTLSec:     node.LeaseTTL(),
			LeaseExpiries:   st.LeaseExpiries,
			VirtualTimeSecs: now.Seconds(),
		}
		if disk != nil {
			out.StorageUsed = int64(disk.Used())
		}
		writeJSON(w, out)
	})
	return mux
}

// MMStats is the JSON shape of the MM's /stats reply.
type MMStats struct {
	RMs []MMRMEntry `json:"rms"`
	// LiveRMs counts the RMs currently within their liveness window
	// (equals len(RMs) when the mapper has no liveness layer).
	LiveRMs int `json:"liveRMs"`
}

// MMRMEntry is one row of the global resource list.
type MMRMEntry struct {
	ID          string  `json:"id"`
	CapacityBps float64 `json:"capacityBps"`
	Addr        string  `json:"addr"`
	// Alive reports the liveness verdict (always true without a liveness
	// layer: an RM the MM would answer with is by definition advertised).
	Alive bool `json:"alive"`
	// Epoch is the RM's liveness epoch: how many times the MM has seen it
	// die and come back.
	Epoch uint64 `json:"epoch"`
}

// livenessSource is the optional liveness surface of a mapper.
// mm.Manager and mm.ShardedManager implement it; the thin MMClient stub
// and liveness-free mappers do not, and degrade to the plain resource
// list.
type livenessSource interface {
	AllRMs() []ecnp.RMInfo
	Alive(id ids.RMID) bool
	Epoch(id ids.RMID) uint64
	LiveCount() int
}

// NewMMHandler builds the HTTP handler for the MM daemon. reg may be
// nil, in which case /metrics serves an empty exposition. A mapper with a
// liveness layer additionally reports dead RMs (rows with alive=false)
// and the live count. tr may be nil (empty /traces).
func NewMMHandler(mapper ecnp.Mapper, reg *telemetry.Registry, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	mux.Handle("/metrics", reg.Handler())
	AttachDebug(mux, tr)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		var out MMStats
		if ls, ok := mapper.(livenessSource); ok {
			for _, info := range ls.AllRMs() {
				out.RMs = append(out.RMs, MMRMEntry{
					ID:          info.ID.String(),
					CapacityBps: float64(info.Capacity),
					Addr:        info.Addr,
					Alive:       ls.Alive(info.ID),
					Epoch:       ls.Epoch(info.ID),
				})
			}
			out.LiveRMs = ls.LiveCount()
		} else {
			for _, info := range mapper.RMs() {
				out.RMs = append(out.RMs, MMRMEntry{
					ID:          info.ID.String(),
					CapacityBps: float64(info.Capacity),
					Addr:        info.Addr,
					Alive:       true,
				})
			}
			out.LiveRMs = len(out.RMs)
		}
		writeJSON(w, out)
	})
	return mux
}

// DFSCStats is the JSON shape of a client's /stats reply.
type DFSCStats struct {
	ID        string `json:"id"`
	Requests  int64  `json:"requests"`
	Failed    int64  `json:"failed"`
	NoReplica int64  `json:"noReplica"`
	Completed int64  `json:"completed"`
	Failovers int64  `json:"failovers"`
	Messages  int64  `json:"messages"`
}

// NewDFSCHandler builds the HTTP handler for a client daemon: the same
// /healthz + /stats + /metrics triple the server daemons expose, so one
// scrape config covers the requester side of the three-phase flow too.
// reg may be nil, in which case /metrics serves an empty exposition; tr
// may be nil (empty /traces).
func NewDFSCHandler(client *dfsc.Client, reg *telemetry.Registry, tr *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", healthz)
	mux.Handle("/metrics", reg.Handler())
	AttachDebug(mux, tr)
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := client.Stats()
		writeJSON(w, DFSCStats{
			ID:        client.ID().String(),
			Requests:  st.Requests,
			Failed:    st.Failed,
			NoReplica: st.NoReplica,
			Completed: st.Completed,
			Failovers: st.Failovers,
			Messages:  st.Messages,
		})
	})
	return mux
}

func healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Serve starts an HTTP server on addr with the handler and returns it
// together with the bound address. Callers stop it with Server.Close.
func Serve(addr string, h http.Handler) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Shutdown stops a server started by Serve, waiting up to timeout for
// in-flight scrapes to drain before force-closing. The listener is gone
// when Shutdown returns (no leaked socket across daemon SIGTERM), even
// if a handler is still stuck past the deadline.
func Shutdown(srv *http.Server, timeout time.Duration) error {
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := srv.Shutdown(ctx)
	if err != nil {
		// Deadline passed with connections still open: drop them. The
		// listener itself was already closed by Shutdown.
		srv.Close()
	}
	return err
}
