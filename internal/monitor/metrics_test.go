package monitor

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/telemetry"
)

func scrape(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

func TestRMMetricsEndpoint(t *testing.T) {
	node, sched := testRM(t)
	reg := telemetry.NewRegistry()
	reg.NewCounter("dfsqos_rm_cfps_total", "CFPs.").Add(7)
	srv := httptest.NewServer(NewRMHandler(node, nil, sched, reg, nil))
	defer srv.Close()

	body, ct := scrape(t, srv.URL+"/metrics")
	if ct != telemetry.ContentType {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(body, "dfsqos_rm_cfps_total 7") {
		t.Fatalf("missing counter in exposition:\n%s", body)
	}
	// /stats stays intact next to /metrics.
	if body, _ := scrape(t, srv.URL+"/stats"); !strings.Contains(body, `"id"`) {
		t.Fatalf("stats JSON broken:\n%s", body)
	}
}

func TestNilRegistryMetricsEndpoint(t *testing.T) {
	node, sched := testRM(t)
	srv := httptest.NewServer(NewRMHandler(node, nil, sched, nil, nil))
	defer srv.Close()
	body, ct := scrape(t, srv.URL+"/metrics")
	if ct != telemetry.ContentType {
		t.Fatalf("content type %q", ct)
	}
	if body != "" {
		t.Fatalf("nil registry exposition not empty: %q", body)
	}
}

func TestMMMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.NewGauge("dfsqos_mm_rms", "Registered RMs.").Set(2)
	srv := httptest.NewServer(NewMMHandler(mm.New(), reg, nil))
	defer srv.Close()
	body, _ := scrape(t, srv.URL+"/metrics")
	if !strings.Contains(body, "dfsqos_mm_rms 2") {
		t.Fatalf("missing gauge:\n%s", body)
	}
}

func TestDFSCHandler(t *testing.T) {
	mgr := mm.New()
	cfg := catalog.DefaultConfig()
	cfg.NumFiles = 2
	cat, err := catalog.Generate(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	client, err2 := dfsc.New(dfsc.Options{
		ID:        3,
		Mapper:    mgr,
		Directory: ecnp.StaticDirectory{},
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Catalog:   cat,
		Policy:    selection.Policy{},
		Scenario:  qos.Soft,
		Rand:      rng.New(1),
		Metrics:   dfsc.NewMetrics(reg),
	})
	if err2 != nil {
		t.Fatal(err2)
	}
	client.Access(0) // no replica registered → counted failure

	srv := httptest.NewServer(NewDFSCHandler(client, reg, nil))
	defer srv.Close()

	body, _ := scrape(t, srv.URL+"/stats")
	if !strings.Contains(body, `"id": "DFSC3"`) || !strings.Contains(body, `"noReplica": 1`) {
		t.Fatalf("dfsc stats:\n%s", body)
	}
	body, _ = scrape(t, srv.URL+"/metrics")
	for _, want := range []string{
		`dfsqos_dfsc_requests_total{outcome="no_replica"} 1`,
		"dfsqos_dfsc_negotiation_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in exposition:\n%s", want, body)
		}
	}
	if body, _ := scrape(t, srv.URL+"/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("healthz body %q", body)
	}
}

func TestShutdownDrainsAndReleasesListener(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.Write([]byte("done"))
	})
	srv, addr, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + addr + "/slow")
		if err == nil {
			io.ReadAll(resp.Body)
			resp.Body.Close()
		}
	}()
	<-started

	done := make(chan error, 1)
	go func() { done <- Shutdown(srv, 2*time.Second) }()
	// The in-flight request holds Shutdown open until the handler ends.
	time.Sleep(50 * time.Millisecond)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	wg.Wait()

	// The listener must be gone: a fresh connect fails.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

func TestShutdownForceClosesAfterDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	srv, addr, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		resp, err := http.Get("http://" + addr + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started

	if err := Shutdown(srv, 20*time.Millisecond); err == nil {
		t.Fatal("expected deadline error from Shutdown with a stuck handler")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after forced Shutdown")
	}
}

func TestShutdownNilServer(t *testing.T) {
	if err := Shutdown(nil, time.Second); err != nil {
		t.Fatal(err)
	}
}
