package rm

import (
	"dfsqos/internal/telemetry"
)

// Metrics is the RM's live telemetry surface: the paper's "dynamic
// runtime information, e.g. the current remained storage bandwidth"
// rendered as continuously scrapable gauges and counters. It mirrors the
// Stats counters onto a registry and adds the runtime gauges the JSON
// snapshot could only sample.
//
// Build one with NewMetrics and pass it through Options.Metrics (or
// SetMetrics). Nil means no-op: the DES and unit tests pay a few
// uncollected atomic ops and nothing else.
type Metrics struct {
	// CFPs counts Call-For-Proposals received
	// (dfsqos_rm_cfps_total).
	CFPs *telemetry.Counter
	// Bids counts bids served; under the paper's always-bid deviation
	// it tracks CFPs one-for-one (dfsqos_rm_bids_total).
	Bids *telemetry.Counter
	// Admissions counts accesses admitted (dfsqos_rm_admissions_total).
	Admissions *telemetry.Counter
	// Rejections counts firm-scenario refusals
	// (dfsqos_rm_rejections_total).
	Rejections *telemetry.Counter
	// OffersAccepted / OffersRejected count inbound replica offers by
	// decision (dfsqos_rm_replica_offers_total{decision}).
	OffersAccepted *telemetry.Counter
	OffersRejected *telemetry.Counter
	// RepTriggers / RepTransfers / RepMigrations / GCEvictions mirror
	// the replication lifecycle counters.
	RepTriggers   *telemetry.Counter
	RepTransfers  *telemetry.Counter
	RepMigrations *telemetry.Counter
	GCEvictions   *telemetry.Counter
	// LeasesExpired counts orphaned reservations reclaimed by the lease
	// sweeper (dfsqos_rm_leases_expired_total).
	LeasesExpired *telemetry.Counter
	// RemainingBandwidth gauges the current remained storage bandwidth
	// in bytes/sec — the quantity every selection policy and evaluation
	// figure is built on
	// (dfsqos_rm_remaining_bandwidth_bytes_per_second).
	RemainingBandwidth *telemetry.Gauge
	// ActiveStreams gauges the open reservations
	// (dfsqos_rm_active_streams).
	ActiveStreams *telemetry.Gauge
	// StorageUsed gauges committed + in-flight replica bytes
	// (dfsqos_rm_storage_used_bytes).
	StorageUsed *telemetry.Gauge
	// Files gauges the committed replicas held
	// (dfsqos_rm_files).
	Files *telemetry.Gauge
	// OversubRatio gauges the advertised admission oversubscription ratio
	// (dfsqos_rm_oversub_ratio).
	OversubRatio *telemetry.Gauge
}

// NewMetrics registers the RM metric families on reg (nil reg yields a
// live no-op sink). One daemon hosts one RM, so the families are
// unlabeled; in-process multi-RM tests share them through the registry's
// get-or-create semantics.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	offers := reg.NewCounterVec("dfsqos_rm_replica_offers_total",
		"Inbound replica offers by decision.", "decision")
	return &Metrics{
		CFPs: reg.NewCounter("dfsqos_rm_cfps_total",
			"Call-For-Proposals received."),
		Bids: reg.NewCounter("dfsqos_rm_bids_total",
			"Bids served (always-bid: one per CFP)."),
		Admissions: reg.NewCounter("dfsqos_rm_admissions_total",
			"Data accesses admitted (opens)."),
		Rejections: reg.NewCounter("dfsqos_rm_rejections_total",
			"Firm-scenario opens refused for insufficient bandwidth."),
		OffersAccepted: offers.With("accepted"),
		OffersRejected: offers.With("rejected"),
		RepTriggers: reg.NewCounter("dfsqos_rm_replication_triggers_total",
			"Replication triggers that produced at least one transfer."),
		RepTransfers: reg.NewCounter("dfsqos_rm_replication_transfers_total",
			"Replica copies committed as source."),
		RepMigrations: reg.NewCounter("dfsqos_rm_replication_migrations_total",
			"Own-replica deletions after exceeding N_MAXR."),
		GCEvictions: reg.NewCounter("dfsqos_rm_gc_evictions_total",
			"Cold replicas deleted by the storage collector."),
		LeasesExpired: reg.NewCounter("dfsqos_rm_leases_expired_total",
			"Orphaned reservations reclaimed by the lease sweeper."),
		RemainingBandwidth: reg.NewGauge("dfsqos_rm_remaining_bandwidth_bytes_per_second",
			"Current remained storage bandwidth (capacity - allocated)."),
		ActiveStreams: reg.NewGauge("dfsqos_rm_active_streams",
			"Open QoS reservations."),
		StorageUsed: reg.NewGauge("dfsqos_rm_storage_used_bytes",
			"Committed plus in-flight replica bytes on the virtual disk."),
		Files: reg.NewGauge("dfsqos_rm_files",
			"Committed replicas held."),
		OversubRatio: reg.NewGauge("dfsqos_rm_oversub_ratio",
			"Admission oversubscription ratio (1 = nominal capacity)."),
	}
}
