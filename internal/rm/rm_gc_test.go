package rm

import (
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// gcHarness builds RMs with a storage budget and GC enabled.
func gcHarness(t *testing.T, storage units.Size, gc replication.GCConfig, files map[ids.RMID]map[ids.FileID]FileMeta) *harness {
	t.Helper()
	h := &harness{
		sched:  simtime.NewScheduler(),
		mapper: mm.New(),
		dir:    make(ecnp.StaticDirectory),
		rms:    make(map[ids.RMID]*RM),
	}
	adapter := ecnp.SimScheduler{S: h.sched}
	master := rng.New(13)
	for _, id := range []ids.RMID{1, 2, 3} {
		node, err := New(Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: units.Mbps(18), StorageBytes: storage},
			Scheduler:   adapter,
			Mapper:      h.mapper,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Rep(1, 8)),
			GC:          gc,
			Rand:        master.Split(id.String()),
			Files:       files[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Register(); err != nil {
			t.Fatal(err)
		}
		h.rms[id] = node
		h.dir[id] = node
	}
	for _, node := range h.rms {
		node.SetDirectory(h.dir)
	}
	return h
}

func TestStorageAccountingOnSeed(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: fm(units.Mbps(2), 100), 1: fm(units.Mbps(1), 100)},
	}
	h := gcHarness(t, units.GB, replication.GCConfig{}, files)
	want := files[1][0].Size + files[1][1].Size
	if got := h.rms[1].StorageUsed(); got != want {
		t.Fatalf("StorageUsed = %v, want %v", got, want)
	}
	if h.rms[2].StorageUsed() != 0 {
		t.Fatal("empty RM reports storage use")
	}
}

func TestSeedOverflowRefused(t *testing.T) {
	_, err := New(Options{
		Info:      ecnp.RMInfo{ID: 1, Capacity: units.Mbps(18), StorageBytes: units.MB},
		Scheduler: ecnp.SimScheduler{S: simtime.NewScheduler()},
		Mapper:    mm.New(),
		History:   history.DefaultConfig(),
		Rand:      rng.New(1),
		Files:     map[ids.FileID]FileMeta{0: fm(units.Mbps(2), 100)}, // 25 MB
	})
	if err == nil {
		t.Fatal("over-capacity seeding accepted")
	}
}

func TestOfferRejectedWhenDiskFull(t *testing.T) {
	// RM2's disk fits only one 25 MB file on 30 MB.
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		2: {9: fm(units.Mbps(2), 100)}, // 25 MB resident
	}
	h := gcHarness(t, 30*units.MB, replication.GCConfig{}, files)
	offer := ecnp.ReplicaOffer{
		Replication: 1, File: 0, SizeBytes: 10 * units.MB,
		Bitrate: units.Mbps(1), DurationSec: 80, Rate: units.Mbps(1.8), Source: 1,
	}
	if h.rms[2].OfferReplica(offer) {
		t.Fatal("full disk accepted an offer")
	}
	if h.rms[2].Stats().OffersRejected != 1 {
		t.Fatal("rejection not counted")
	}
	// An RM with room accepts, and in-flight bytes reserve space.
	if !h.rms[3].OfferReplica(offer) {
		t.Fatal("empty disk rejected offer")
	}
	if got := h.rms[3].StorageUsed(); got != 10*units.MB {
		t.Fatalf("in-flight replica not reserved: %v", got)
	}
	// Abort returns the space.
	h.rms[3].FinishReplica(1, false)
	if got := h.rms[3].StorageUsed(); got != 0 {
		t.Fatalf("aborted replica left %v reserved", got)
	}
}

func TestGCEvictsColdReplicas(t *testing.T) {
	// RM1 holds two files, the second never requested. Storage 60 MB with
	// watermarks 80%/50%: landing a third replica pushes use to ~55 MB
	// (92%) and the collector must evict down past 30 MB.
	cold := fm(units.Mbps(2), 100)  // 25 MB
	hot := fm(units.Mbps(0.4), 100) // 5 MB
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: hot, 1: cold},
		2: {0: hot, 1: cold},
		3: {0: hot, 1: cold},
	}
	gc := replication.GCConfig{Enabled: true, HighWatermark: 0.8, LowWatermark: 0.5, MinReplicas: 2}
	h := gcHarness(t, 60*units.MB, gc, files)
	// Heat file 0 on RM1 so file 1 is the cold victim.
	for i := 0; i < 5; i++ {
		h.rms[1].HandleCFP(ecnp.CFP{Request: ids.RequestID(i), File: 0, Bitrate: units.Mbps(0.4), DurationSec: 100})
	}
	// Land a new 25 MB replica on RM1.
	offer := ecnp.ReplicaOffer{
		Replication: 7, File: 5, SizeBytes: 25 * units.MB,
		Bitrate: units.Mbps(2), DurationSec: 100, Rate: units.Mbps(1.8), Source: 2,
	}
	if !h.rms[1].OfferReplica(offer) {
		t.Fatal("offer rejected")
	}
	h.mapper.AddReplica(5, 1)
	h.rms[1].FinishReplica(7, true)

	if h.rms[1].HasFile(1) {
		t.Fatal("cold replica survived GC")
	}
	if !h.rms[1].HasFile(0) {
		t.Fatal("hot replica evicted")
	}
	if !h.rms[1].HasFile(5) {
		t.Fatal("fresh replica evicted")
	}
	if h.rms[1].Stats().GCEvictions == 0 {
		t.Fatal("eviction not counted")
	}
	if h.mapper.ReplicaCount(1) != 2 {
		t.Fatalf("mapper shows %d replicas of the evicted file, want 2", h.mapper.ReplicaCount(1))
	}
	if got := h.rms[1].StorageUsed(); got > 30*units.MB {
		t.Fatalf("storage %v above the low watermark", got)
	}
}

func TestGCNeverDropsBelowMinReplicas(t *testing.T) {
	// Every file sits at exactly MinReplicas: the collector must do
	// nothing even far above the watermark.
	meta := fm(units.Mbps(2), 100) // 25 MB
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: meta, 1: meta},
		2: {0: meta, 1: meta},
		3: {0: meta, 1: meta},
	}
	gc := replication.GCConfig{Enabled: true, HighWatermark: 0.5, LowWatermark: 0.3, MinReplicas: 3}
	h := gcHarness(t, 60*units.MB, gc, files)
	offer := ecnp.ReplicaOffer{
		Replication: 9, File: 7, SizeBytes: 5 * units.MB,
		Bitrate: units.Mbps(0.4), DurationSec: 100, Rate: units.Mbps(1.8), Source: 2,
	}
	if !h.rms[1].OfferReplica(offer) {
		t.Fatal("offer rejected")
	}
	h.mapper.AddReplica(7, 1)
	h.rms[1].FinishReplica(9, true)
	if !h.rms[1].HasFile(0) || !h.rms[1].HasFile(1) {
		t.Fatal("GC evicted a minimum-degree replica")
	}
	// File 7 has only 1 replica — protected by the mapper/min rule too.
	if !h.rms[1].HasFile(7) {
		t.Fatal("GC evicted a sole replica")
	}
}
