// Package rm implements the Resource Manager — the Storage Provider role of
// the ECNP model. Each RM owns one throttled disk (modelled by a bandwidth
// ledger), answers Call-For-Proposals with bids built from its remaining
// bandwidth, two-queue usage history and occupation-time statistics, admits
// or refuses data accesses depending on the QoS scenario, and runs the
// source and destination endpoints of the dynamic replication mechanism.
//
// The RM is driven through an abstract scheduler (ecnp.Scheduler), so the
// identical code executes under the discrete-event simulation and in live
// TCP mode; a mutex guards all state for the latter.
package rm

import (
	"fmt"
	"sync"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/ledger"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/tenant"
	"dfsqos/internal/units"
)

// FileMeta is what an RM knows about a file it stores.
type FileMeta struct {
	Bitrate     units.BytesPerSec
	Size        units.Size
	DurationSec float64
	// Tenant is the byte-quota owner for files admitted through StoreFile
	// on a tenanted RM: deleting the file (GC, migration) returns its
	// bytes to that tenant's budget. Zero for untenanted stores and for
	// replication-created copies, which are system-initiated and never
	// charged.
	Tenant ids.TenantID
}

// Stats counts notable RM events for metrics and experiments.
type Stats struct {
	CFPs           int64 // CFPs received
	Opens          int64 // accesses admitted
	OpenRefusals   int64 // firm-scenario refusals
	RepTriggers    int64 // replication triggers that produced ≥1 transfer
	RepTransfers   int64 // replica copies completed (as source)
	RepMigrations  int64 // own-replica deletions after exceeding N_MAXR
	OffersAccepted int64 // incoming offers accepted (as destination)
	OffersRejected int64 // incoming offers rejected (as destination)
	GCEvictions    int64 // cold replicas deleted by the storage collector
	LeaseExpiries  int64 // orphaned reservations reclaimed by the sweeper
}

// incoming tracks one accepted inbound replication transfer.
type incoming struct {
	file ids.FileID
	meta FileMeta
	rate units.BytesPerSec
}

// reservation is one admitted QoS access and its lease state. The epoch
// is a per-RM admission sequence number: a sweeper that decided to expire
// reservation (req, epoch) re-checks the epoch before acting, so a
// request ID recycled between the decision and the kill is never
// collateral damage, and a late client Close after expiry finds nothing
// and stays the no-op it always was.
type reservation struct {
	rate         units.BytesPerSec
	lastActivity simtime.Time
	epoch        uint64
	// tenant owns the reservation's quota charge; released on Close and by
	// the lease sweeper alike, so a crashed tenant's quota always returns.
	tenant ids.TenantID
}

// DataCopier moves real replica bytes during dynamic replication. The DES
// leaves it nil (the transfer is pure timing: size/speed seconds); live
// mode plugs a copier that streams the file from the local virtual disk to
// the destination RM over TCP, paced at the replication rate. CopyReplica
// blocks until the copy completes and returns nil only when the
// destination durably holds the bytes.
type DataCopier interface {
	CopyReplica(dst ids.RMID, rep ids.ReplicationID, file ids.FileID, meta FileMeta, rate units.BytesPerSec) error
}

// RM is one Resource Manager.
type RM struct {
	mu sync.Mutex

	info    ecnp.RMInfo
	sched   ecnp.Scheduler
	mapper  ecnp.Mapper
	dir     ecnp.Directory
	led     *ledger.Ledger
	tenants *tenant.Ledger // nil: tenancy disabled
	hist    *history.TwoQueue
	src     *rng.Source
	repCfg  replication.Config
	copier  DataCopier

	files       map[ids.FileID]FileMeta
	sumDur      float64    // Σ DurationSec over files (occupation-time aggregate)
	storageUsed units.Size // Σ Size over files + in-flight incoming replicas
	counts      map[ids.FileID]int64
	gcCfg       replication.GCConfig

	active   map[ids.RequestID]*reservation
	leaseTTL float64 // seconds; <=0 disables lease expiry
	leaseSeq uint64  // admission epoch counter

	// Admission hooks (see SetAdmissionHooks). Invoked outside r.mu.
	onAdmit   func(ids.RequestID, ids.TenantID, units.BytesPerSec)
	onRelease func(ids.RequestID, ids.TenantID, units.BytesPerSec)

	// met mirrors stats onto the telemetry registry and keeps the
	// runtime gauges (remaining bandwidth, active streams, storage)
	// current; never nil (no-op by default).
	met *Metrics

	// Replication state.
	incomings     map[ids.ReplicationID]incoming
	incomingFiles map[ids.FileID]int
	outgoingFiles map[ids.FileID]int
	srcActive     int
	dstActive     int
	lastRep       simtime.Time
	hasRepped     bool
	repSeq        int64

	stats Stats
}

// Options configures a new RM.
type Options struct {
	Info        ecnp.RMInfo
	Scheduler   ecnp.Scheduler
	Mapper      ecnp.Mapper
	History     history.Config
	Replication replication.Config
	// GC configures cold-replica deletion (zero value: disabled).
	GC replication.GCConfig
	// Rand is this RM's private random stream (tie-breaking, destination
	// sampling).
	Rand *rng.Source
	// Copier optionally moves real bytes during replication (live mode).
	Copier DataCopier
	// Files seeds the RM's local file table with its static replicas.
	Files map[ids.FileID]FileMeta
	// Metrics receives live telemetry (nil: no-op — the DES stays
	// untouched). See NewMetrics.
	Metrics *Metrics
	// LeaseTTLSec bounds how long an admitted reservation may sit with no
	// stream activity and no keepalive before the sweeper reclaims its
	// bandwidth. Zero (the default) disables leases entirely, so the DES
	// and existing deployments are untouched.
	LeaseTTLSec float64
	// Oversub is the admission oversubscription ratio (≥ 1): firm
	// admission accepts reservations up to capacity×Oversub while the
	// blkio enforcement tree keeps guaranteeing previously-admitted
	// assured floors. Zero means 1.0 (nominal, no oversubscription).
	Oversub float64
	// Tenants is the RM's tenant quota ledger. Nil (the default) disables
	// tenancy entirely: every request is admitted exactly as before
	// tenants existed. With a ledger installed, Open charges reservations
	// against the requesting tenant's bandwidth quota, StoreFile charges
	// stored bytes, and HandleCFP clamps bids to the tenant's remaining
	// allowance and reports the tenant's weighted share for the selection
	// policy's δ term.
	Tenants *tenant.Ledger
}

// New constructs an RM. The Directory is injected later via SetDirectory
// because providers and the directory reference each other.
func New(opt Options) (*RM, error) {
	if err := opt.Info.Validate(); err != nil {
		return nil, err
	}
	if opt.Scheduler == nil || opt.Mapper == nil || opt.Rand == nil {
		return nil, fmt.Errorf("rm: %v: Scheduler, Mapper and Rand are required", opt.Info.ID)
	}
	if err := opt.Replication.Validate(); err != nil {
		return nil, err
	}
	if err := opt.GC.Validate(); err != nil {
		return nil, err
	}
	hist, err := history.New(opt.History)
	if err != nil {
		return nil, err
	}
	met := opt.Metrics
	if met == nil {
		met = NewMetrics(nil)
	}
	r := &RM{
		info:          opt.Info,
		sched:         opt.Scheduler,
		met:           met,
		mapper:        opt.Mapper,
		led:           ledger.New(opt.Info.Capacity, opt.Scheduler.Now()),
		tenants:       opt.Tenants,
		hist:          hist,
		src:           opt.Rand,
		repCfg:        opt.Replication,
		gcCfg:         opt.GC,
		copier:        opt.Copier,
		files:         make(map[ids.FileID]FileMeta, len(opt.Files)),
		counts:        make(map[ids.FileID]int64),
		active:        make(map[ids.RequestID]*reservation),
		leaseTTL:      opt.LeaseTTLSec,
		incomings:     make(map[ids.ReplicationID]incoming),
		incomingFiles: make(map[ids.FileID]int),
		outgoingFiles: make(map[ids.FileID]int),
	}
	if opt.Oversub != 0 {
		if err := r.led.SetOversub(opt.Oversub); err != nil {
			return nil, fmt.Errorf("rm: %v: %w", opt.Info.ID, err)
		}
	}
	for f, meta := range opt.Files {
		r.files[f] = meta
		r.sumDur += meta.DurationSec
		r.storageUsed += meta.Size
	}
	if opt.Info.StorageBytes > 0 && r.storageUsed > opt.Info.StorageBytes {
		return nil, fmt.Errorf("rm: %v seeded with %v of replicas exceeding %v disk",
			opt.Info.ID, r.storageUsed, opt.Info.StorageBytes)
	}
	r.met.RemainingBandwidth.Set(float64(opt.Info.Capacity))
	r.met.StorageUsed.Set(float64(r.storageUsed))
	r.met.Files.Set(float64(len(r.files)))
	r.met.OversubRatio.Set(r.led.Oversub())
	return r, nil
}

// SetAdmissionHooks installs callbacks fired after a reservation is
// admitted (onAdmit, with the owning tenant and the admitted bitrate)
// and after it is released — by the client's Close or by the lease
// sweeper (onRelease, with the same tenant and rate so per-tenant
// enforcement state can be unwound exactly). Live mode uses them to
// create and tear down blkio throttle groups — per-reservation for
// untenanted streams, shared per-tenant for tenanted ones — so an
// expired lease hands its borrowed-bandwidth claim back to the disk's
// lending pool. Both hooks run outside the RM's lock; either may be
// nil. Install them before traffic flows.
func (r *RM) SetAdmissionHooks(onAdmit func(ids.RequestID, ids.TenantID, units.BytesPerSec), onRelease func(ids.RequestID, ids.TenantID, units.BytesPerSec)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onAdmit = onAdmit
	r.onRelease = onRelease
}

// refreshGaugesLocked re-derives the runtime gauges from the current
// state. Caller holds r.mu.
func (r *RM) refreshGaugesLocked() {
	r.met.RemainingBandwidth.Set(float64(r.led.Remaining()))
	r.met.ActiveStreams.Set(float64(len(r.active)))
	r.met.StorageUsed.Set(float64(r.storageUsed))
	r.met.Files.Set(float64(len(r.files)))
}

// StorageUsed returns the bytes of committed and in-flight replicas.
func (r *RM) StorageUsed() units.Size {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.storageUsed
}

// SetDirectory wires the RM to its peers; it must be called before any
// replication can run.
func (r *RM) SetDirectory(dir ecnp.Directory) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dir = dir
}

// Register submits the RM's resources and file list to the Metadata
// Manager — the first step of system initialization (paper Fig. 2).
func (r *RM) Register() error {
	r.mu.Lock()
	files := make([]ids.FileID, 0, len(r.files))
	for f := range r.files {
		files = append(files, f)
	}
	info := r.info
	r.mu.Unlock()
	return r.mapper.RegisterRM(info, files)
}

// Info implements ecnp.Provider.
func (r *RM) Info() ecnp.RMInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

// SetAddr records the RM's dialable network address so self-initiated
// (re-)registrations — Register called directly or from the heartbeat
// loop's self-heal path — advertise it. Live deployments call it once the
// server socket is bound, before the first registration; without it a
// heartbeat-triggered re-register would wipe the MM's record of where to
// dial this RM.
func (r *RM) SetAddr(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.info.Addr = addr
}

// Stats returns a copy of the RM's event counters.
func (r *RM) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Snapshot freezes the ledger integrals at now (see ledger.Snapshot).
func (r *RM) Snapshot(now simtime.Time) ledger.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.led.Snapshot(now)
}

// Allocated returns the currently reserved bandwidth.
func (r *RM) Allocated() units.BytesPerSec {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.led.Allocated()
}

// TenantUsage snapshots the RM's tenant ledger (nil when tenancy is
// disabled) — the monitor page and scenario gates consume this.
func (r *RM) TenantUsage() []tenant.Usage {
	return r.tenants.Snapshot()
}

// HasFile reports whether the RM holds a committed replica of file.
func (r *RM) HasFile(f ids.FileID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.files[f]
	return ok
}

// NumFiles returns the number of committed replicas on this RM.
func (r *RM) NumFiles() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.files)
}

// HandleCFP implements ecnp.Provider. Per the paper's first deviation from
// textbook ECNP, the RM always returns a bid rather than refusing. The CFP
// arrival is recorded in the access history (it is a request for the file,
// whether or not this RM wins) and may trigger the dynamic-replication
// source agent.
func (r *RM) HandleCFP(cfp ecnp.CFP) selection.Bid {
	r.mu.Lock()
	r.stats.CFPs++
	r.met.CFPs.Inc()
	r.met.Bids.Inc() // always-bid: every CFP is answered with a bid
	now := r.sched.Now()

	meta, known := r.files[cfp.File]
	tOcp := cfp.DurationSec
	if known {
		tOcp = meta.DurationSec
	}
	// The request frequency feeds the replication agent's busiest-file
	// ranking; the utilization history is recorded at Open time, when the
	// file is actually accessed on this RM.
	r.counts[cfp.File]++

	tOcpAvg := 0.0
	if n := len(r.files); n > 0 {
		tOcpAvg = r.sumDur / float64(n)
	}
	assured := r.led.Remaining()
	if assured < 0 {
		assured = 0
	}
	bid := selection.Bid{
		RM:          r.info.ID,
		Rem:         r.led.Remaining(),
		Trend:       r.hist.Trend(now, r.led.Allocated()),
		OccBias:     selection.OccupationBias(tOcp, tOcpAvg),
		Req:         cfp.Bitrate,
		HasReplica:  known,
		Assured:     assured,
		Ceil:        r.led.AdmitRemaining(),
		TenantShare: r.tenants.Share(cfp.Tenant, r.info.Capacity),
	}
	// A quota-capped tenant cannot be promised more than its remaining
	// allowance: clamp the floors the bid advertises so the requester's
	// admission math never plans on bandwidth Open would refuse.
	if rem, capped := r.tenants.RemainingBandwidth(cfp.Tenant); capped {
		clamped := false
		if bid.Assured > rem {
			bid.Assured, clamped = rem, true
		}
		if bid.Ceil > rem {
			bid.Ceil, clamped = rem, true
		}
		if clamped {
			r.tenants.Clamped(cfp.Tenant)
		}
	}
	r.mu.Unlock()

	// The replication check runs outside the bid critical section: it
	// talks to the mapper and to peer RMs.
	r.maybeReplicate(now)
	return bid
}

// Open implements ecnp.Provider.
func (r *RM) Open(req ecnp.OpenRequest) ecnp.OpenResult {
	r.mu.Lock()
	if _, dup := r.active[req.Request]; dup {
		r.mu.Unlock()
		return ecnp.OpenResult{OK: false, Reason: "duplicate request id"}
	}
	if req.Firm && !r.led.Fits(req.Bitrate) {
		r.stats.OpenRefusals++
		r.met.Rejections.Inc()
		r.mu.Unlock()
		return ecnp.OpenResult{OK: false, Reason: "insufficient bandwidth"}
	}
	// Tenant quota is checked after capacity: a firm-refused request never
	// touches the tenant ledger, and an over-quota refusal holds even in
	// the soft scenario, where untenanted admission is unconditional.
	if err := r.tenants.ReserveBandwidth(req.Tenant, req.Bitrate); err != nil {
		r.stats.OpenRefusals++
		r.met.Rejections.Inc()
		r.mu.Unlock()
		return ecnp.OpenResult{OK: false, Reason: err.Error()}
	}
	now := r.sched.Now()
	size := units.Size(float64(req.Bitrate) * req.DurationSec)
	// The two-queue history accumulates "the cumulative amount of
	// bandwidth utilization": the sizes of files being accessed on this
	// RM during the recording window.
	r.hist.Record(now, size)
	r.led.Allocate(now, req.Bitrate)
	r.led.AddAssignedBytes(size)
	r.leaseSeq++
	r.active[req.Request] = &reservation{rate: req.Bitrate, lastActivity: now, epoch: r.leaseSeq, tenant: req.Tenant}
	r.stats.Opens++
	r.met.Admissions.Inc()
	r.refreshGaugesLocked()
	onAdmit := r.onAdmit
	r.mu.Unlock()
	// The hook runs before the admission is reported, so by the time the
	// client can stream, its throttle group exists.
	if onAdmit != nil {
		onAdmit(req.Request, req.Tenant, req.Bitrate)
	}
	return ecnp.OpenResult{OK: true}
}

// Close implements ecnp.Provider. Closing an unknown request is a no-op so
// a requester retrying after a lost reply — or arriving after the lease
// sweeper already reclaimed the reservation — cannot corrupt the ledger.
func (r *RM) Close(request ids.RequestID) {
	r.mu.Lock()
	res, ok := r.active[request]
	if !ok {
		r.mu.Unlock()
		return
	}
	delete(r.active, request)
	r.led.Release(r.sched.Now(), res.rate)
	r.tenants.ReleaseBandwidth(res.tenant, res.rate)
	r.refreshGaugesLocked()
	onRelease := r.onRelease
	r.mu.Unlock()
	if onRelease != nil {
		onRelease(request, res.tenant, res.rate)
	}
}

// Touch renews a reservation's lease implicitly: the live data plane
// calls it once per streamed chunk, so an active stream never expires.
// Touching an unknown request is a no-op (the stream's own error path
// will surface the expiry).
func (r *RM) Touch(request ids.RequestID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if res, ok := r.active[request]; ok {
		res.lastActivity = r.sched.Now()
	}
}

// Renew is the explicit keepalive: a client holding a reservation open
// without streaming (e.g. between chunks of a slow consumer) beats the
// TTL by renewing. Unlike Touch it reports an unknown request as an
// error so the client learns its lease already expired and can
// re-negotiate instead of streaming into a closed reservation.
func (r *RM) Renew(request ids.RequestID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.active[request]
	if !ok {
		return fmt.Errorf("rm: %v: no active reservation %v (lease expired or never admitted)", r.info.ID, request)
	}
	res.lastActivity = r.sched.Now()
	return nil
}

// LeaseTTL returns the configured lease TTL in seconds (0: disabled).
func (r *RM) LeaseTTL() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.leaseTTL
}

// ActiveReservations returns the number of admitted, unexpired accesses.
func (r *RM) ActiveReservations() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// SweepLeases expires every reservation whose lease has been idle longer
// than the TTL as of now, returning the reclaimed bandwidth to the
// ledger. It reports how many reservations were expired. The sweep is
// two-phase: victims are collected first, then each is re-checked by
// (request, epoch) before the kill, so a reservation re-admitted under a
// recycled request ID between the phases survives. Expiry is idempotent
// with the client's Close: whichever side arrives second finds nothing.
func (r *RM) SweepLeases(now simtime.Time) int {
	r.mu.Lock()
	if r.leaseTTL <= 0 {
		r.mu.Unlock()
		return 0
	}
	type victim struct {
		req   ids.RequestID
		epoch uint64
	}
	var victims []victim
	for req, res := range r.active {
		if now.Sub(res.lastActivity).Seconds() > r.leaseTTL {
			victims = append(victims, victim{req: req, epoch: res.epoch})
		}
	}
	type expired struct {
		req    ids.RequestID
		tenant ids.TenantID
		rate   units.BytesPerSec
	}
	var expiredReqs []expired
	for _, v := range victims {
		res, ok := r.active[v.req]
		if !ok || res.epoch != v.epoch {
			continue // closed or re-admitted since collection
		}
		delete(r.active, v.req)
		r.led.Release(now, res.rate)
		r.tenants.ReleaseBandwidth(res.tenant, res.rate)
		r.stats.LeaseExpiries++
		r.met.LeasesExpired.Inc()
		expiredReqs = append(expiredReqs, expired{req: v.req, tenant: res.tenant, rate: res.rate})
	}
	if len(expiredReqs) > 0 {
		r.refreshGaugesLocked()
	}
	onRelease := r.onRelease
	r.mu.Unlock()
	// Release hooks fire outside the lock: tearing down a dead stream's
	// throttle group is how its borrowed bandwidth returns to the pool.
	if onRelease != nil {
		for _, e := range expiredReqs {
			onRelease(e.req, e.tenant, e.rate)
		}
	}
	return len(expiredReqs)
}

// StoreFile implements ecnp.Provider: it admits a brand-new file onto this
// RM — the write half of the paper's data communication phase ("data can
// be stored into the selected storage resource"). The file joins the local
// table and storage accounting; the caller registers the replica with the
// MM once the store succeeds.
func (r *RM) StoreFile(req ecnp.StoreRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.files[req.File]; dup {
		return fmt.Errorf("rm: %v already holds %v", r.info.ID, req.File)
	}
	if r.info.StorageBytes > 0 && r.storageUsed+req.SizeBytes > r.info.StorageBytes {
		return fmt.Errorf("rm: %v disk full (%v of %v used)", r.info.ID, r.storageUsed, r.info.StorageBytes)
	}
	// Byte quota is checked last so a refused store leaves nothing to
	// roll back; the charge is released if the file is later deleted.
	if err := r.tenants.ChargeBytes(req.Tenant, int64(req.SizeBytes)); err != nil {
		return fmt.Errorf("rm: %v refuses store of %v: %w", r.info.ID, req.File, err)
	}
	meta := FileMeta{Bitrate: req.Bitrate, Size: req.SizeBytes, DurationSec: req.DurationSec, Tenant: req.Tenant}
	r.files[req.File] = meta
	r.sumDur += meta.DurationSec
	r.storageUsed += meta.Size
	r.refreshGaugesLocked()
	return nil
}

// OfferReplica implements ecnp.Provider (the destination endpoint).
func (r *RM) OfferReplica(offer ecnp.ReplicaOffer) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, has := r.files[offer.File]
	hasReplica := has || r.incomingFiles[offer.File] > 0
	ok := replication.DestinationDecision(
		hasReplica,
		r.led.Remaining(),
		r.info.Capacity,
		r.repCfg.BRev(offer.Bitrate),
		r.repCfg.TriggerFrac,
	)
	// A full disk also rejects: the replica would not fit.
	if ok && r.info.StorageBytes > 0 && r.storageUsed+offer.SizeBytes > r.info.StorageBytes {
		ok = false
	}
	if !ok {
		r.stats.OffersRejected++
		r.met.OffersRejected.Inc()
		return false
	}
	r.storageUsed += offer.SizeBytes
	r.stats.OffersAccepted++
	r.met.OffersAccepted.Inc()
	if r.repCfg.ChargeTransfers {
		r.led.Allocate(r.sched.Now(), offer.Rate)
	}
	r.incomings[offer.Replication] = incoming{
		file: offer.File,
		meta: FileMeta{Bitrate: offer.Bitrate, Size: offer.SizeBytes, DurationSec: offer.DurationSec},
		rate: offer.Rate,
	}
	r.incomingFiles[offer.File]++
	r.dstActive++
	r.refreshGaugesLocked()
	return true
}

// FinishReplica implements ecnp.Provider (destination side completion).
func (r *RM) FinishReplica(rep ids.ReplicationID, committed bool) {
	r.mu.Lock()
	in, ok := r.incomings[rep]
	if !ok {
		r.mu.Unlock()
		return
	}
	delete(r.incomings, rep)
	r.incomingFiles[in.file]--
	if r.incomingFiles[in.file] <= 0 {
		delete(r.incomingFiles, in.file)
	}
	r.dstActive--
	if r.repCfg.ChargeTransfers {
		r.led.Release(r.sched.Now(), in.rate)
	}
	commitOK := false
	if committed {
		if _, dup := r.files[in.file]; !dup {
			r.files[in.file] = in.meta
			r.sumDur += in.meta.DurationSec
			commitOK = true
		}
	}
	if !commitOK {
		// Aborted (or duplicate) transfer: return the reserved space.
		r.storageUsed -= in.meta.Size
	}
	r.refreshGaugesLocked()
	r.mu.Unlock()
	if commitOK {
		// A landed replica may push storage past the high watermark; the
		// collector runs outside the lock (it talks to the mapper).
		r.collectGarbage()
	}
}

// collectGarbage deletes the coldest local replicas until storage
// utilization falls below the GC low watermark. Files currently being
// replicated out are pinned; the mapper (which refuses to drop a last
// replica) and MinReplicas protect availability.
func (r *RM) collectGarbage() {
	r.mu.Lock()
	if !r.gcCfg.ShouldCollect(r.storageUsed, r.info.StorageBytes) {
		r.mu.Unlock()
		return
	}
	victims := make([]replication.Victim, 0, len(r.files))
	for f, meta := range r.files {
		victims = append(victims, replication.Victim{
			File:   f,
			Size:   meta.Size,
			Count:  r.counts[f],
			Pinned: r.outgoingFiles[f] > 0,
		})
	}
	used := r.storageUsed
	target := r.gcCfg.TargetBytes(r.info.StorageBytes)
	minReplicas := r.gcCfg.MinReplicas
	self := r.info.ID
	r.mu.Unlock()

	// Fill in the global replica counts outside the lock.
	for i := range victims {
		victims[i].Replicas = r.mapper.ReplicaCount(victims[i].File)
	}
	for _, f := range replication.SelectVictims(victims, used, target, minReplicas) {
		if err := r.mapper.RemoveReplica(f, self); err != nil {
			continue // lost a race (e.g. became the last replica); skip
		}
		r.mu.Lock()
		if meta, ok := r.files[f]; ok {
			delete(r.files, f)
			r.sumDur -= meta.DurationSec
			r.storageUsed -= meta.Size
			r.tenants.ReleaseBytes(meta.Tenant, int64(meta.Size))
			r.stats.GCEvictions++
			r.met.GCEvictions.Inc()
			r.refreshGaugesLocked()
		}
		r.mu.Unlock()
	}
}

// maybeReplicate is the source-side agent: it checks the trigger conditions
// and, when they hold, replicates the busiest feasible file to destinations
// chosen by the configured strategy.
func (r *RM) maybeReplicate(now simtime.Time) {
	r.mu.Lock()
	cfg := r.repCfg
	if !cfg.Strategy.Enabled || r.dir == nil {
		r.mu.Unlock()
		return
	}
	// Trigger conditions (paper §V, "When to replicate"):
	// remaining bandwidth below B_TH, not already a source or destination
	// endpoint, and no replication processed within the cooldown window.
	if r.led.FracRemaining() >= cfg.TriggerFrac ||
		r.srcActive > 0 || r.dstActive > 0 ||
		(r.hasRepped && now.Sub(r.lastRep).Seconds() < cfg.CooldownSec) {
		r.mu.Unlock()
		return
	}
	// Busiest-file candidate set N_BF: smallest prefix of this RM's
	// request counts covering BusyCoverage of the total.
	fcs := make([]replication.FileCount, 0, len(r.counts))
	for f, c := range r.counts {
		if _, stored := r.files[f]; stored {
			fcs = append(fcs, replication.FileCount{File: f, Count: c})
		}
	}
	candidates := replication.BusiestCovering(fcs, cfg.BusyCoverage)
	self := r.info.ID
	r.mu.Unlock()

	for _, f := range candidates {
		if r.tryReplicateFile(now, f, self) {
			return
		}
	}
}

// tryReplicateFile attempts one replication of file f; it reports whether
// at least one copy was started.
func (r *RM) tryReplicateFile(now simtime.Time, f ids.FileID, self ids.RMID) bool {
	r.mu.Lock()
	meta, stored := r.files[f]
	outgoing := r.outgoingFiles[f] > 0
	cfg := r.repCfg
	r.mu.Unlock()
	if !stored || outgoing {
		return false
	}
	if !cfg.SourceEligible(meta.Bitrate) {
		return false
	}
	nCur := r.mapper.ReplicaCount(f)
	if nCur < 1 {
		return false
	}
	want, migrate := cfg.Strategy.Plan(nCur)
	if want < 1 {
		return false
	}
	withoutIDs := r.mapper.RMsWithout(f)
	if len(withoutIDs) == 0 {
		return false
	}
	infos := make([]ecnp.RMInfo, 0, len(withoutIDs))
	for _, id := range withoutIDs {
		if id == self {
			continue
		}
		if p, ok := r.dir.Provider(id); ok {
			infos = append(infos, p.Info())
		}
	}
	if len(infos) == 0 {
		return false
	}

	r.mu.Lock()
	order := cfg.Dest.Order(infos, r.src)
	r.mu.Unlock()

	type started struct {
		rep ids.ReplicationID
		dst ecnp.Provider
	}
	var transfers []started
	for _, dstID := range order {
		if len(transfers) >= want {
			break
		}
		dst, ok := r.dir.Provider(dstID)
		if !ok {
			continue
		}
		// Reserve the replica slot globally first: the MM enforces the
		// replica cap atomically, so concurrent sources of the same file
		// cannot overshoot N_MAXR. A migrating plan may hold one replica
		// beyond the bound until the source deletes its own copy.
		cap := cfg.Strategy.NMaxR
		if migrate {
			cap++
		}
		if err := r.mapper.BeginReplication(f, dstID, cap); err != nil {
			continue
		}
		rep := r.nextRepID()
		offer := ecnp.ReplicaOffer{
			Replication: rep,
			File:        f,
			SizeBytes:   meta.Size,
			Bitrate:     meta.Bitrate,
			DurationSec: meta.DurationSec,
			Rate:        cfg.Speed,
			Source:      self,
		}
		if dst.OfferReplica(offer) {
			transfers = append(transfers, started{rep: rep, dst: dst})
		} else {
			r.mapper.EndReplication(f, dstID, false)
		}
	}
	if len(transfers) == 0 {
		return false
	}

	// Commit the source side: reserve the transfer bandwidth, mark the
	// replication state and schedule the completions.
	r.mu.Lock()
	r.stats.RepTriggers++
	r.met.RepTriggers.Inc()
	r.srcActive += len(transfers)
	r.outgoingFiles[f] += len(transfers)
	r.lastRep = now
	r.hasRepped = true
	if cfg.ChargeTransfers {
		for range transfers {
			r.led.Allocate(now, cfg.Speed)
		}
	}
	// state shared by this trigger's transfers: migration happens only
	// after the last copy finishes, and only if at least one committed.
	state := &transferGroup{remaining: len(transfers)}
	// migrate applies only if the bound is actually exceeded once the
	// accepted copies land.
	doMigrate := migrate && nCur+len(transfers) > cfg.Strategy.NMaxR
	r.refreshGaugesLocked()
	r.mu.Unlock()

	dur := simtime.Duration(units.DurationSec(meta.Size, cfg.Speed))
	for _, tr := range transfers {
		tr := tr
		if r.copier == nil {
			// Timing-only transfer (the DES): the copy "completes" after
			// size/speed seconds of virtual time.
			r.sched.After(dur, func(done simtime.Time) {
				r.completeTransfer(done, f, tr.rep, tr.dst, state, doMigrate, true)
			})
			continue
		}
		// Live mode: move the actual bytes, paced at the replication
		// rate, and complete with the copy's real outcome.
		go func() {
			err := r.copier.CopyReplica(tr.dst.Info().ID, tr.rep, f, meta, cfg.Speed)
			r.completeTransfer(r.sched.Now(), f, tr.rep, tr.dst, state, doMigrate, err == nil)
		}()
	}
	return true
}

// transferGroup tracks one trigger's outstanding copies.
type transferGroup struct {
	remaining int
	committed int
}

// completeTransfer finalizes one outbound copy. copied reports whether the
// bytes reached the destination; a failed copy aborts that destination's
// replica without affecting its siblings.
func (r *RM) completeTransfer(now simtime.Time, f ids.FileID, rep ids.ReplicationID, dst ecnp.Provider, state *transferGroup, migrate bool, copied bool) {
	// Resolve the reservation before releasing resources so a concurrent
	// lookup never observes the file with fewer holders than reality.
	committed := copied && r.mapper.EndReplication(f, dst.Info().ID, true) == nil
	if !copied {
		r.mapper.EndReplication(f, dst.Info().ID, false)
	}
	dst.FinishReplica(rep, committed)

	r.mu.Lock()
	if r.repCfg.ChargeTransfers {
		r.led.Release(now, r.repCfg.Speed)
	}
	r.srcActive--
	r.outgoingFiles[f]--
	if r.outgoingFiles[f] <= 0 {
		delete(r.outgoingFiles, f)
	}
	if committed {
		r.stats.RepTransfers++
		r.met.RepTransfers.Inc()
		state.committed++
	}
	state.remaining--
	last := state.remaining == 0
	anyCommitted := state.committed > 0
	r.refreshGaugesLocked()
	r.mu.Unlock()

	if last && migrate && anyCommitted {
		r.migrateOut(f)
	}
}

// migrateOut deletes the RM's own replica of f after a bound-exceeding
// replication, per the paper: "if the replication exceeds the upper bound
// of the number of replicas, the RM will delete the replica that exists on
// itself".
func (r *RM) migrateOut(f ids.FileID) {
	// The mapper refuses to drop the last replica; only delete locally
	// once the global map accepted the removal.
	if err := r.mapper.RemoveReplica(f, r.info.ID); err != nil {
		return
	}
	r.mu.Lock()
	if meta, ok := r.files[f]; ok {
		delete(r.files, f)
		r.sumDur -= meta.DurationSec
		r.storageUsed -= meta.Size
		r.tenants.ReleaseBytes(meta.Tenant, int64(meta.Size))
		r.stats.RepMigrations++
		r.met.RepMigrations.Inc()
		r.refreshGaugesLocked()
	}
	r.mu.Unlock()
}

func (r *RM) nextRepID() ids.ReplicationID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.repSeq++
	return ids.ReplicationID(int64(r.info.ID)<<40 | r.repSeq)
}

var _ ecnp.Provider = (*RM)(nil)
