package rm

import (
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/rng"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// leaseRM builds one registered RM with a lease TTL over its own scheduler.
func leaseRM(t *testing.T, ttlSec float64) (*RM, *simtime.Scheduler) {
	t.Helper()
	sched := simtime.NewScheduler()
	node, err := New(Options{
		Info:        ecnp.RMInfo{ID: 1, Capacity: units.Mbps(18), StorageBytes: 16 * units.GB},
		Scheduler:   ecnp.SimScheduler{S: sched},
		Mapper:      mm.New(),
		History:     history.DefaultConfig(),
		Replication: staticCfg(),
		Rand:        rng.New(7).Split("lease"),
		LeaseTTLSec: ttlSec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Register(); err != nil {
		t.Fatal(err)
	}
	return node, sched
}

func open(t *testing.T, r *RM, req ids.RequestID, rate units.BytesPerSec) {
	t.Helper()
	if res := r.Open(ecnp.OpenRequest{Request: req, Bitrate: rate, DurationSec: 100}); !res.OK {
		t.Fatalf("open %v refused: %s", req, res.Reason)
	}
}

func TestSweepExpiresIdleLeaseAndReturnsBandwidth(t *testing.T) {
	r, sched := leaseRM(t, 5)
	open(t, r, 1, units.Mbps(4))
	if got := r.Allocated(); got != units.Mbps(4) {
		t.Fatalf("allocated %v, want 4 Mbps", got)
	}
	// Within the TTL nothing expires.
	if n := r.SweepLeases(sched.Now().Add(4)); n != 0 {
		t.Fatalf("in-window sweep expired %d", n)
	}
	// Past the TTL the orphan is reclaimed and its bandwidth returned.
	if n := r.SweepLeases(sched.Now().Add(6)); n != 1 {
		t.Fatalf("post-TTL sweep expired %d, want 1", n)
	}
	if got := r.Allocated(); got != 0 {
		t.Fatalf("allocated %v after expiry, want 0", got)
	}
	if got := r.ActiveReservations(); got != 0 {
		t.Fatalf("ActiveReservations = %d, want 0", got)
	}
	if st := r.Stats(); st.LeaseExpiries != 1 {
		t.Fatalf("LeaseExpiries = %d, want 1", st.LeaseExpiries)
	}
	// The client's late Close finds nothing: expiry and Close are
	// idempotent in either order, and the ledger is not double-released.
	r.Close(1)
	if got := r.Allocated(); got != 0 {
		t.Fatalf("allocated %v after late close, want 0", got)
	}
}

func TestTouchAndRenewBeatTheTTL(t *testing.T) {
	r, sched := leaseRM(t, 5)
	open(t, r, 1, units.Mbps(2)) // lastActivity = 0
	open(t, r, 2, units.Mbps(2)) // lastActivity = 0

	// Advance virtual time to 4s and renew only request 1 — the chunk
	// path uses Touch, the idle-keepalive path uses Renew; both stamp.
	sched.RunUntil(4)
	r.Touch(1)
	if err := r.Renew(1); err != nil {
		t.Fatal(err)
	}
	// At t=6 request 2 is 6s idle (dead), request 1 only 2s (alive).
	sched.RunUntil(6)
	if n := r.SweepLeases(sched.Now()); n != 1 {
		t.Fatalf("sweep expired %d, want 1", n)
	}
	if got := r.ActiveReservations(); got != 1 {
		t.Fatalf("ActiveReservations = %d, want 1", got)
	}
	if got := r.Allocated(); got != units.Mbps(2) {
		t.Fatalf("allocated %v, want 2 Mbps", got)
	}
	// Renew on the reaped reservation reports the expiry; Touch stays a
	// silent no-op (the stream's own error path surfaces it).
	if err := r.Renew(2); err == nil {
		t.Fatal("Renew on expired reservation succeeded")
	}
	r.Touch(2)
}

func TestSweepEpochCheckSparesReadmission(t *testing.T) {
	r, sched := leaseRM(t, 5)
	open(t, r, 1, units.Mbps(4))
	// The reservation dies and the same request ID is re-admitted (a
	// retry reusing its ID) with a fresh lease before the next sweep: the
	// epoch check must spare the newcomer.
	if n := r.SweepLeases(sched.Now().Add(6)); n != 1 {
		t.Fatalf("first sweep expired %d, want 1", n)
	}
	sched.RunUntil(6)
	open(t, r, 1, units.Mbps(4)) // fresh epoch, lastActivity = 6
	if n := r.SweepLeases(sched.Now().Add(4)); n != 0 {
		t.Fatalf("sweep reaped the re-admitted reservation (%d)", n)
	}
	if got := r.ActiveReservations(); got != 1 {
		t.Fatalf("ActiveReservations = %d, want 1", got)
	}
}

func TestSweepDisabledWithoutTTL(t *testing.T) {
	r, sched := leaseRM(t, 0)
	open(t, r, 1, units.Mbps(4))
	if n := r.SweepLeases(sched.Now().Add(1e9)); n != 0 {
		t.Fatalf("TTL-less sweep expired %d", n)
	}
	if got := r.Allocated(); got != units.Mbps(4) {
		t.Fatalf("allocated %v, want 4 Mbps", got)
	}
	if r.LeaseTTL() != 0 {
		t.Fatalf("LeaseTTL = %v, want 0", r.LeaseTTL())
	}
}
