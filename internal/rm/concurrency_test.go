package rm

import (
	"sync"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/units"
)

// TestConcurrentOperations hammers one RM from many goroutines — the live
// TCP server serves each connection on its own goroutine, so every public
// method must tolerate concurrent callers. Run with -race.
func TestConcurrentOperations(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: fm(units.Mbps(2), 100), 1: fm(units.Mbps(1), 50)},
		2: {0: fm(units.Mbps(2), 100)},
		3: {1: fm(units.Mbps(1), 50)},
	}
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{
		1: units.Mbps(100), 2: units.Mbps(100), 3: units.Mbps(100),
	}, files)
	node := h.rms[1]

	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req := ids.RequestID(int64(g)<<32 | int64(i))
				file := ids.FileID(i % 2)
				node.HandleCFP(ecnp.CFP{Request: req, File: file, Bitrate: units.Mbps(1), DurationSec: 10})
				res := node.Open(ecnp.OpenRequest{Request: req, File: file, Bitrate: units.Mbps(1), DurationSec: 10, Firm: true})
				if res.OK {
					node.Close(req)
				}
				node.Snapshot(h.sched.Now())
				node.Allocated()
				node.StorageUsed()
				node.Stats()
			}
		}()
	}
	wg.Wait()
	if got := node.Allocated(); got != 0 {
		t.Fatalf("allocated %v after all closes", got)
	}
	st := node.Stats()
	if st.CFPs != goroutines*iters {
		t.Fatalf("CFPs = %d, want %d", st.CFPs, goroutines*iters)
	}
	if st.Opens == 0 {
		t.Fatal("no opens admitted")
	}
}

// TestConcurrentOffersSingleWinnerPerFile fires many concurrent replica
// offers of the same file at one destination; exactly one may be accepted
// (rule 1 covers in-flight copies).
func TestConcurrentOffersSingleWinnerPerFile(t *testing.T) {
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{
		1: units.Mbps(100), 2: units.Mbps(100),
	}, nil)
	dst := h.rms[2]
	const offers = 16
	accepted := make(chan bool, offers)
	var wg sync.WaitGroup
	for i := 0; i < offers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			accepted <- dst.OfferReplica(ecnp.ReplicaOffer{
				Replication: ids.ReplicationID(i + 1),
				File:        7,
				SizeBytes:   units.MB,
				Bitrate:     units.Mbps(1),
				DurationSec: 8,
				Rate:        units.Mbps(1.8),
				Source:      1,
			})
		}()
	}
	wg.Wait()
	close(accepted)
	wins := 0
	for ok := range accepted {
		if ok {
			wins++
		}
	}
	if wins != 1 {
		t.Fatalf("%d concurrent offers of the same file accepted, want 1", wins)
	}
}
