package rm

import (
	"math"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/mm"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/units"
)

// harness wires a scheduler, a mapper and a set of RMs for actor tests.
type harness struct {
	sched  *simtime.Scheduler
	mapper *mm.Manager
	dir    ecnp.StaticDirectory
	rms    map[ids.RMID]*RM
}

func newHarness(t *testing.T, repCfg replication.Config, caps map[ids.RMID]units.BytesPerSec, files map[ids.RMID]map[ids.FileID]FileMeta) *harness {
	t.Helper()
	h := &harness{
		sched:  simtime.NewScheduler(),
		mapper: mm.New(),
		dir:    make(ecnp.StaticDirectory),
		rms:    make(map[ids.RMID]*RM),
	}
	adapter := ecnp.SimScheduler{S: h.sched}
	master := rng.New(7)
	for id, capBW := range caps {
		node, err := New(Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: 16 * units.GB},
			Scheduler:   adapter,
			Mapper:      h.mapper,
			History:     history.DefaultConfig(),
			Replication: repCfg,
			Rand:        master.Split(id.String()),
			Files:       files[id],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := node.Register(); err != nil {
			t.Fatal(err)
		}
		h.rms[id] = node
		h.dir[id] = node
	}
	for _, node := range h.rms {
		node.SetDirectory(h.dir)
	}
	return h
}

func fm(bitrate units.BytesPerSec, durSec float64) FileMeta {
	return FileMeta{Bitrate: bitrate, Size: units.Size(float64(bitrate) * durSec), DurationSec: durSec}
}

func staticCfg() replication.Config { return replication.DefaultConfig(replication.Static()) }

func TestNewValidation(t *testing.T) {
	_, err := New(Options{})
	if err == nil {
		t.Fatal("empty options accepted")
	}
	_, err = New(Options{
		Info: ecnp.RMInfo{ID: 1, Capacity: units.Mbps(18)},
	})
	if err == nil {
		t.Fatal("missing scheduler/mapper/rand accepted")
	}
}

func TestOpenCloseLifecycle(t *testing.T) {
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)}, nil)
	r := h.rms[1]
	res := r.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	if !res.OK {
		t.Fatalf("open refused: %s", res.Reason)
	}
	if got := r.Allocated(); got != units.Mbps(2) {
		t.Fatalf("allocated %v, want 2 Mbps", got)
	}
	if dup := r.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(2)}); dup.OK {
		t.Fatal("duplicate request id admitted")
	}
	r.Close(1)
	if got := r.Allocated(); got != 0 {
		t.Fatalf("allocated %v after close, want 0", got)
	}
	r.Close(1) // double close is a no-op
	r.Close(42)
	st := r.Stats()
	if st.Opens != 1 {
		t.Fatalf("Opens = %d, want 1", st.Opens)
	}
}

func TestFirmRefusalAndSoftOverAllocation(t *testing.T) {
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{1: units.Mbps(10)}, nil)
	r := h.rms[1]
	if res := r.Open(ecnp.OpenRequest{Request: 1, Bitrate: units.Mbps(8), DurationSec: 10, Firm: true}); !res.OK {
		t.Fatal("first firm open refused")
	}
	if res := r.Open(ecnp.OpenRequest{Request: 2, Bitrate: units.Mbps(8), DurationSec: 10, Firm: true}); res.OK {
		t.Fatal("firm open admitted past capacity")
	}
	if r.Stats().OpenRefusals != 1 {
		t.Fatalf("OpenRefusals = %d, want 1", r.Stats().OpenRefusals)
	}
	// Soft open of the same size is admitted and over-allocates.
	if res := r.Open(ecnp.OpenRequest{Request: 3, Bitrate: units.Mbps(8), DurationSec: 10}); !res.OK {
		t.Fatal("soft open refused")
	}
	if rem := h.rms[1].Snapshot(h.sched.Now()).Allocated; rem != units.Mbps(16) {
		t.Fatalf("allocated %v, want 16 Mbps", rem)
	}
}

func TestBidFields(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: fm(units.Mbps(2), 100), 1: fm(units.Mbps(1), 300)},
	}
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)}, files)
	r := h.rms[1]
	bid := r.HandleCFP(ecnp.CFP{Request: 1, File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	if bid.RM != 1 {
		t.Fatalf("bid.RM = %v", bid.RM)
	}
	if bid.Rem != units.Mbps(18) {
		t.Fatalf("bid.Rem = %v, want full capacity", bid.Rem)
	}
	if bid.Req != units.Mbps(2) {
		t.Fatalf("bid.Req = %v", bid.Req)
	}
	// T_ocp = 100, T_ocp_avg = (100+300)/2 = 200 → e^-2.
	want := selection.OccupationBias(100, 200)
	if math.Abs(bid.OccBias-want) > 1e-12 {
		t.Fatalf("bid.OccBias = %v, want %v", bid.OccBias, want)
	}
	if bid.Trend != 0 {
		t.Fatalf("bid.Trend = %v with no history, want 0", bid.Trend)
	}
	// Remaining drops after an allocation.
	r.Open(ecnp.OpenRequest{Request: 1, File: 0, Bitrate: units.Mbps(4), DurationSec: 100})
	bid = r.HandleCFP(ecnp.CFP{Request: 2, File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	if bid.Rem != units.Mbps(14) {
		t.Fatalf("bid.Rem = %v after allocation, want 14 Mbps", bid.Rem)
	}
}

func TestCFPCountsAndHistoryOnOpen(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{1: {0: fm(units.Mbps(2), 100)}}
	h := newHarness(t, staticCfg(), map[ids.RMID]units.BytesPerSec{1: units.Mbps(18)}, files)
	r := h.rms[1]
	for i := 0; i < 5; i++ {
		r.HandleCFP(ecnp.CFP{Request: ids.RequestID(i), File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	}
	if r.Stats().CFPs != 5 {
		t.Fatalf("CFPs = %d, want 5", r.Stats().CFPs)
	}
}

func TestOfferReplicaRules(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {0: fm(units.Mbps(2), 100)},
	}
	h := newHarness(t, replication.DefaultConfig(replication.Rep(1, 8)),
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)}, files)
	dst := h.rms[2]
	offer := ecnp.ReplicaOffer{
		Replication: 1, File: 0, SizeBytes: 25 * units.MB,
		Bitrate: units.Mbps(2), DurationSec: 100, Rate: units.Mbps(1.8), Source: 1,
	}
	// Rule 1: destination already has the replica.
	if h.rms[1].OfferReplica(offer) {
		t.Fatal("holder accepted an offer for its own file")
	}
	// Healthy destination accepts.
	if !dst.OfferReplica(offer) {
		t.Fatal("idle destination rejected offer")
	}
	// Same file offered again while in flight: reject (nested replication).
	offer2 := offer
	offer2.Replication = 2
	if dst.OfferReplica(offer2) {
		t.Fatal("destination accepted duplicate in-flight replica")
	}
	// Completion commits the file.
	dst.FinishReplica(1, true)
	if !dst.HasFile(0) {
		t.Fatal("destination does not own file after commit")
	}
	st := dst.Stats()
	if st.OffersAccepted != 1 || st.OffersRejected != 1 {
		t.Fatalf("offer stats = %+v", st)
	}
	// Rule 3: a destination below B_TH rejects.
	dst.Open(ecnp.OpenRequest{Request: 9, Bitrate: units.Mbps(16), DurationSec: 1000})
	offer3 := offer
	offer3.Replication = 3
	offer3.File = 5
	if dst.OfferReplica(offer3) {
		t.Fatal("destination below B_TH accepted offer")
	}
}

func TestFinishReplicaAbort(t *testing.T) {
	h := newHarness(t, replication.DefaultConfig(replication.Rep(1, 8)),
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)}, nil)
	dst := h.rms[2]
	offer := ecnp.ReplicaOffer{
		Replication: 7, File: 3, SizeBytes: units.MB,
		Bitrate: units.Mbps(1), DurationSec: 8, Rate: units.Mbps(1.8), Source: 1,
	}
	if !dst.OfferReplica(offer) {
		t.Fatal("offer rejected")
	}
	dst.FinishReplica(7, false)
	if dst.HasFile(3) {
		t.Fatal("aborted replica committed")
	}
	dst.FinishReplica(7, true) // unknown id: no-op
	if dst.HasFile(3) {
		t.Fatal("double finish committed the file")
	}
}

// TestReplicationEndToEnd drives an overload on RM1 and verifies the file
// migrates per Rep(1,2): a copy lands elsewhere and the source deletes its
// own replica once the bound is exceeded.
func TestReplicationEndToEnd(t *testing.T) {
	hot := ids.FileID(0)
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {hot: fm(units.Mbps(2), 100), 7: fm(units.Mbps(1), 50)},
		2: {hot: fm(units.Mbps(2), 100)},
	}
	cfg := replication.DefaultConfig(replication.Rep(1, 2))
	cfg.CooldownSec = 1
	h := newHarness(t, cfg,
		map[ids.RMID]units.BytesPerSec{
			1: units.Mbps(10), 2: units.Mbps(10), 3: units.Mbps(100),
		}, files)
	src := h.rms[1]

	// Saturate RM1 beyond 80% so the next CFP triggers replication.
	src.Open(ecnp.OpenRequest{Request: 100, File: hot, Bitrate: units.Mbps(9), DurationSec: 5000})
	// Request traffic for the hot file establishes its busiest-file rank
	// and fires the trigger.
	src.HandleCFP(ecnp.CFP{Request: 1, File: hot, Bitrate: units.Mbps(2), DurationSec: 100})

	if src.Stats().RepTriggers != 1 {
		t.Fatalf("RepTriggers = %d, want 1", src.Stats().RepTriggers)
	}
	// Run the DES until the transfer completes.
	h.sched.Run()
	if !h.rms[3].HasFile(hot) {
		t.Fatal("replica did not land on RM3")
	}
	if src.HasFile(hot) {
		t.Fatal("source kept its replica past N_MAXR (migration expected)")
	}
	if got := h.mapper.ReplicaCount(hot); got != 2 {
		t.Fatalf("replica count = %d, want 2 after migration", got)
	}
	st := src.Stats()
	if st.RepTransfers != 1 || st.RepMigrations != 1 {
		t.Fatalf("stats = %+v, want 1 transfer and 1 migration", st)
	}
}

// TestReplicationCooldown verifies an RM does not trigger twice within the
// cooldown window.
func TestReplicationCooldown(t *testing.T) {
	hot := ids.FileID(0)
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {hot: fm(units.Mbps(2), 100)},
	}
	cfg := replication.DefaultConfig(replication.Rep(1, 8))
	cfg.CooldownSec = 60
	h := newHarness(t, cfg,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(10), 2: units.Mbps(100), 3: units.Mbps(100)}, files)
	src := h.rms[1]
	src.Open(ecnp.OpenRequest{Request: 100, File: hot, Bitrate: units.Mbps(9), DurationSec: 5000})
	src.HandleCFP(ecnp.CFP{Request: 1, File: hot, Bitrate: units.Mbps(2), DurationSec: 100})
	if src.Stats().RepTriggers != 1 {
		t.Fatalf("first trigger missing")
	}
	// Let the transfer finish (file is 25 MB at 1.8 Mbit/s ≈ 111 s),
	// then immediately re-CFP: the cooldown counts from trigger start,
	// so at transfer end the window has already passed; use a fresh CFP
	// right after the trigger instead to verify suppression.
	src.HandleCFP(ecnp.CFP{Request: 2, File: hot, Bitrate: units.Mbps(2), DurationSec: 100})
	if src.Stats().RepTriggers != 1 {
		t.Fatalf("trigger fired during active transfer/cooldown")
	}
	h.sched.Run()
}

// TestNoTriggerWhenHealthy: an RM above the threshold never replicates.
func TestNoTriggerWhenHealthy(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{1: {0: fm(units.Mbps(2), 100)}}
	h := newHarness(t, replication.DefaultConfig(replication.Rep(1, 8)),
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(18), 2: units.Mbps(18)}, files)
	for i := 0; i < 10; i++ {
		h.rms[1].HandleCFP(ecnp.CFP{Request: ids.RequestID(i), File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	}
	if h.rms[1].Stats().RepTriggers != 0 {
		t.Fatal("healthy RM triggered replication")
	}
}

// TestStaticStrategyNeverReplicates: the static configuration never runs
// the agent even under overload.
func TestStaticStrategyNeverReplicates(t *testing.T) {
	files := map[ids.RMID]map[ids.FileID]FileMeta{1: {0: fm(units.Mbps(2), 100)}}
	h := newHarness(t, staticCfg(),
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(10), 2: units.Mbps(100)}, files)
	h.rms[1].Open(ecnp.OpenRequest{Request: 9, File: 0, Bitrate: units.Mbps(9.5), DurationSec: 1000})
	h.rms[1].HandleCFP(ecnp.CFP{Request: 1, File: 0, Bitrate: units.Mbps(2), DurationSec: 100})
	if h.rms[1].Stats().RepTriggers != 0 {
		t.Fatal("static strategy replicated")
	}
	h.sched.Run()
	if h.rms[2].HasFile(0) {
		t.Fatal("replica appeared under static strategy")
	}
}

// TestRepGrowthWithoutMigration: Rep(1,8) with replicas below the bound
// grows the count and keeps the source replica.
func TestRepGrowthWithoutMigration(t *testing.T) {
	hot := ids.FileID(0)
	files := map[ids.RMID]map[ids.FileID]FileMeta{
		1: {hot: fm(units.Mbps(2), 100)},
	}
	cfg := replication.DefaultConfig(replication.Rep(1, 8))
	h := newHarness(t, cfg,
		map[ids.RMID]units.BytesPerSec{1: units.Mbps(10), 2: units.Mbps(100)}, files)
	src := h.rms[1]
	src.Open(ecnp.OpenRequest{Request: 100, File: hot, Bitrate: units.Mbps(9), DurationSec: 5000})
	src.HandleCFP(ecnp.CFP{Request: 1, File: hot, Bitrate: units.Mbps(2), DurationSec: 100})
	h.sched.Run()
	if !src.HasFile(hot) {
		t.Fatal("source lost its replica below the bound")
	}
	if got := h.mapper.ReplicaCount(hot); got != 2 {
		t.Fatalf("replica count = %d, want 2", got)
	}
	if src.Stats().RepMigrations != 0 {
		t.Fatal("unexpected migration below the bound")
	}
}
