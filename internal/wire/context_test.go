package wire

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestCallContextDeadlineUnblocksStalledRead verifies a CallContext
// against a peer that never replies returns promptly at the context
// deadline instead of blocking forever.
func TestCallContextDeadlineUnblocksStalledRead(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		// Drain the request, then stall: never reply.
		buf := make([]byte, 1<<16)
		for {
			if _, err := srv.Read(buf); err != nil {
				return
			}
		}
	}()

	wc := NewConn(cli)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := wc.CallContext(ctx, KindRMs, nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a silent peer succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bounded call returned after %v", elapsed)
	}
}

// TestCallContextCancelUnblocksStalledRead verifies early cancellation
// (not just deadline expiry) aborts a pending call.
func TestCallContextCancelUnblocksStalledRead(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := srv.Read(buf); err != nil {
				return
			}
		}
	}()

	wc := NewConn(cli)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := wc.CallContext(ctx, KindRMs, nil)
	if err == nil {
		t.Fatal("canceled call succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled call returned after %v", elapsed)
	}
}

// TestCallContextPlainSuccess verifies the deadline plumbing leaves a
// healthy round trip untouched and clears the connection deadline after.
func TestCallContextPlainSuccess(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		swc := NewConn(srv)
		for {
			if _, err := swc.Read(); err != nil {
				return
			}
			if err := swc.Write(KindAck, Ack{}); err != nil {
				return
			}
		}
	}()

	wc := NewConn(cli)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	// Two calls through the same conn: the first must not leave a stale
	// deadline that kills the second.
	for i := 0; i < 2; i++ {
		reply, err := wc.CallContext(ctx, KindRMs, nil)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if reply.Kind != KindAck {
			t.Fatalf("call %d: reply %v", i, reply.Kind)
		}
	}
}

// TestCallRemoteErrorIsTyped verifies a served error surfaces as
// RemoteError, matchable with errors.As — never by substring.
func TestCallRemoteErrorIsTyped(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	go func() {
		swc := NewConn(srv)
		if _, err := swc.Read(); err != nil {
			return
		}
		swc.WriteError(errors.New("boom"))
	}()

	wc := NewConn(cli)
	_, err := wc.Call(KindRMs, nil)
	var re RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v (%T), want RemoteError", err, err)
	}
	if re.Text != "boom" {
		t.Fatalf("RemoteError.Text = %q", re.Text)
	}
}
