//go:build gobonly

package wire

// buildFastPath is the compiled-in codec default: the gobonly build
// neither emits binary fast-path frames nor accepts them on read —
// incoming binary frames surface a typed *CodecError. It exists to prove
// cross-codec interop failures are loud and typed, not silent corruption.
const buildFastPath = false
