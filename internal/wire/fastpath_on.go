//go:build !gobonly

package wire

// buildFastPath is the compiled-in codec default: this build both emits
// binary fast-path frames for eligible kinds and accepts them on read.
// Build with -tags gobonly for a gob-only endpoint (compatibility probe:
// such a reader rejects binary frames with a typed *CodecError).
const buildFastPath = true
