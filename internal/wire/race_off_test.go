//go:build !race

package wire

// raceEnabled reports whether the race detector is compiled in.
// Allocation-count assertions are skipped under -race: the detector's
// instrumentation allocates, which would fail the 0-allocs guards for
// reasons unrelated to the codec.
const raceEnabled = false
