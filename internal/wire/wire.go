// Package wire frames the ECNP protocol messages for TCP transport: each
// frame is a 4-byte big-endian length followed by a gob-encoded Msg. Frames
// are independent (stateless gob per frame), so a connection can be taken
// over after any message boundary and a corrupted frame cannot poison
// decoder state. A frame-size cap bounds memory against malformed peers.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/selection"
)

// MaxFrame bounds a single message, comfortably above the largest data
// chunk (256 KiB) plus headers.
const MaxFrame = 4 << 20

// Kind identifies the message type.
type Kind uint16

// Control-plane and data-plane message kinds.
const (
	KindError Kind = iota
	// Mapper operations (DFSC/RM → MM).
	KindRegisterRM
	KindLookup
	KindRMsWithout
	KindAddReplica
	KindRemoveReplica
	KindBeginReplication
	KindEndReplication
	KindReplicaCount
	KindRMs
	// Mapper replies.
	KindAck
	KindRMList
	KindRMInfoList
	KindCount
	// Provider operations (DFSC/peer RM → RM).
	KindCFP
	KindBid
	KindOpen
	KindOpenResult
	KindClose
	KindOfferReplica
	KindOfferReply
	KindFinishReplica
	KindStoreFile
	// Data plane.
	KindReadFile
	KindFileChunk
	KindFileEnd
	KindWriteFile
	// Liveness (RM → MM) and reservation-lease keepalive (DFSC → RM).
	KindHeartbeat
	KindKeepalive
)

// String implements fmt.Stringer for diagnostics.
func (k Kind) String() string {
	names := map[Kind]string{
		KindError: "Error", KindRegisterRM: "RegisterRM", KindLookup: "Lookup",
		KindRMsWithout: "RMsWithout", KindAddReplica: "AddReplica",
		KindRemoveReplica: "RemoveReplica", KindReplicaCount: "ReplicaCount",
		KindBeginReplication: "BeginReplication", KindEndReplication: "EndReplication",
		KindRMs: "RMs", KindAck: "Ack", KindRMList: "RMList",
		KindRMInfoList: "RMInfoList", KindCount: "Count", KindCFP: "CFP",
		KindBid: "Bid", KindOpen: "Open", KindOpenResult: "OpenResult",
		KindClose: "Close", KindOfferReplica: "OfferReplica",
		KindOfferReply: "OfferReply", KindFinishReplica: "FinishReplica",
		KindStoreFile: "StoreFile",
		KindReadFile:  "ReadFile", KindFileChunk: "FileChunk", KindFileEnd: "FileEnd",
		KindWriteFile: "WriteFile",
		KindHeartbeat: "Heartbeat", KindKeepalive: "Keepalive",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", uint16(k))
}

// Msg is one framed message.
type Msg struct {
	Kind    Kind
	Payload any
}

// Payload structs not already defined by the ecnp package.
type (
	// RegisterRM carries an RM registration.
	RegisterRM struct {
		Info  ecnp.RMInfo
		Files []ids.FileID
	}
	// FileRef names a file (Lookup, RMsWithout, ReplicaCount, ReadFile).
	FileRef struct {
		File ids.FileID
	}
	// ReplicaRef names a (file, RM) pair (Add/RemoveReplica).
	ReplicaRef struct {
		File ids.FileID
		RM   ids.RMID
	}
	// BeginReplication reserves a pending replica (see ecnp.Mapper).
	BeginReplication struct {
		File     ids.FileID
		RM       ids.RMID
		MaxTotal int
	}
	// EndReplication resolves a reservation.
	EndReplication struct {
		File   ids.FileID
		RM     ids.RMID
		Commit bool
	}
	// RMList answers Lookup and RMsWithout.
	RMList struct {
		RMs []ids.RMID
	}
	// RMInfoList answers RMs.
	RMInfoList struct {
		Infos []ecnp.RMInfo
	}
	// Count answers ReplicaCount.
	Count struct {
		N int
	}
	// CloseReq releases a reservation.
	CloseReq struct {
		Request ids.RequestID
	}
	// OfferReply answers OfferReplica.
	OfferReply struct {
		Accepted bool
	}
	// FinishReplica finalizes a transfer at the destination.
	FinishReplica struct {
		Replication ids.ReplicationID
		Committed   bool
	}
	// ReadFile opens a data stream.
	ReadFile struct {
		File ids.FileID
		// ChunkSize is the server's streaming granularity hint in bytes.
		ChunkSize int
		// Offset is the byte position the stream starts at: 0 reads the
		// whole file; a failover resume picks up exactly where the
		// previous replica's stream died.
		Offset int64
		// Request, when non-zero, names the QoS reservation this stream
		// serves; the server treats each chunk as implicit lease renewal.
		Request ids.RequestID
	}
	// WriteFile opens an inbound data stream: the sender follows with
	// FileChunk frames and a FileEnd, and the receiver stores the bytes
	// on its virtual disk. Replication identifies the transfer this
	// stream belongs to (0 for plain uploads).
	WriteFile struct {
		File        ids.FileID
		SizeBytes   int64
		Replication ids.ReplicationID
	}
	// FileChunk is one piece of streamed file data.
	FileChunk struct {
		Offset int64
		Data   []byte
	}
	// FileEnd terminates a stream with an integrity checksum.
	FileEnd struct {
		Size     int64
		Checksum uint64
	}
	// Ack is the empty success reply.
	Ack struct{}
	// Error carries a remote failure.
	Error struct {
		Text string
	}
	// Heartbeat is an RM's periodic liveness beacon to the MM.
	Heartbeat struct {
		RM ids.RMID
	}
	// Keepalive explicitly renews a reservation lease at the serving RM.
	Keepalive struct {
		Request ids.RequestID
	}
)

func init() {
	gob.Register(RegisterRM{})
	gob.Register(FileRef{})
	gob.Register(ReplicaRef{})
	gob.Register(BeginReplication{})
	gob.Register(EndReplication{})
	gob.Register(RMList{})
	gob.Register(RMInfoList{})
	gob.Register(Count{})
	gob.Register(CloseReq{})
	gob.Register(OfferReply{})
	gob.Register(FinishReplica{})
	gob.Register(ReadFile{})
	gob.Register(WriteFile{})
	gob.Register(FileChunk{})
	gob.Register(FileEnd{})
	gob.Register(Ack{})
	gob.Register(Error{})
	gob.Register(Heartbeat{})
	gob.Register(Keepalive{})
	gob.Register(ecnp.CFP{})
	gob.Register(ecnp.OpenRequest{})
	gob.Register(ecnp.OpenResult{})
	gob.Register(ecnp.ReplicaOffer{})
	gob.Register(ecnp.StoreRequest{})
	gob.Register(ecnp.RMInfo{})
	gob.Register(selection.Bid{})
}

// ChecksumBasis is the FNV-1a offset basis: the initial state of the
// running checksum every data stream carries. A failover client threads
// one running state across segments served by different replicas; since
// an offset resume is byte-contiguous with its predecessor, the final
// FileEnd's whole-file checksum still verifies.
const ChecksumBasis uint64 = 14695981039346656037

// checksumPrime is the FNV-1a prime.
const checksumPrime uint64 = 1099511628211

// ChecksumUpdate folds data into an FNV-1a running state and returns the
// new state.
func ChecksumUpdate(sum uint64, data []byte) uint64 {
	for _, b := range data {
		sum ^= uint64(b)
		sum *= checksumPrime
	}
	return sum
}

// RemoteError is an error the peer *served* as a KindError reply: the RPC
// round trip itself completed, so the connection stays healthy and
// reusable. Callers distinguish it from transport failures with
//
//	var re wire.RemoteError
//	if errors.As(err, &re) { ... }
//
// (or transport.IsRemote), never by matching the error text.
type RemoteError struct {
	// Text is the peer's diagnostic message.
	Text string
}

// Error implements error. The "wire: remote error:" prefix is kept stable
// for log readability only; programmatic classification must use errors.As.
func (e RemoteError) Error() string { return "wire: remote error: " + e.Text }

// FrameTooLargeError reports a frame-size cap violation: an outgoing
// message that encoded past MaxFrame, or an incoming header announcing a
// body past the cap (a malformed or hostile peer). Match it with
//
//	var fe *wire.FrameTooLargeError
//	if errors.As(err, &fe) { ... }
//
// so transport and telemetry can classify cap violations apart from
// generic connection failures.
type FrameTooLargeError struct {
	// Kind is the message kind for outgoing violations; outgoing is
	// false (and Kind zero) for incoming ones, where the frame was
	// rejected before decoding.
	Kind Kind
	// Size is the offending frame's body size in bytes.
	Size int64
	// Cap is the limit that was exceeded (MaxFrame).
	Cap int64
	// Outgoing distinguishes encode-side from read-side violations.
	Outgoing bool
}

// Error implements error.
func (e *FrameTooLargeError) Error() string {
	if e.Outgoing {
		return fmt.Sprintf("wire: %v frame of %d bytes exceeds cap %d", e.Kind, e.Size, e.Cap)
	}
	return fmt.Sprintf("wire: incoming frame of %d bytes exceeds cap %d", e.Size, e.Cap)
}

// deadliner is the deadline surface of net.Conn (and net.Pipe).
type deadliner interface {
	SetDeadline(time.Time) error
}

// writeDeadliner is the write-side deadline surface of net.Conn.
type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// Conn frames messages over a reliable byte stream. Reads and writes are
// independently serialized, so one goroutine may stream reads while another
// writes.
type Conn struct {
	wmu sync.Mutex
	rmu sync.Mutex
	rw  io.ReadWriter
	// wt, guarded by wmu, arms a fresh write deadline per frame (servers
	// use it so a stalled reader cannot wedge a handler goroutine).
	wt time.Duration
}

// NewConn wraps a byte stream (normally a *net.TCPConn).
func NewConn(rw io.ReadWriter) *Conn { return &Conn{rw: rw} }

// SetDeadline forwards an absolute deadline to the underlying stream when
// it supports one (net.Conn does; an in-memory buffer does not). It
// reports whether a deadline was applied. A zero time clears the deadline.
func (c *Conn) SetDeadline(t time.Time) bool {
	if d, ok := c.rw.(deadliner); ok {
		return d.SetDeadline(t) == nil
	}
	return false
}

// SetWriteTimeout arms a rolling per-frame write deadline: every Write
// gets d from its start to reach the kernel, independent of how long the
// connection has been open. Zero (the default) disables it. It is a no-op
// on streams without deadline support.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.wt = d
	c.wmu.Unlock()
}

// Write sends one message.
func (c *Conn) Write(kind Kind, payload any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(Msg{Kind: kind, Payload: payload}); err != nil {
		return fmt.Errorf("wire: encoding %v: %w", kind, err)
	}
	if body.Len() > MaxFrame {
		return &FrameTooLargeError{Kind: kind, Size: int64(body.Len()), Cap: MaxFrame, Outgoing: true}
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.wt > 0 {
		if wd, ok := c.rw.(writeDeadliner); ok {
			wd.SetWriteDeadline(time.Now().Add(c.wt))
		}
	}
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing header: %w", err)
	}
	if _, err := c.rw.Write(body.Bytes()); err != nil {
		return fmt.Errorf("wire: writing body: %w", err)
	}
	return nil
}

// WriteTorn writes a deliberately truncated frame: a header declaring the
// full body length followed by only half the body bytes. The peer blocks
// on the missing bytes until the connection drops, then surfaces an EOF
// mid-frame — the exact shape of a server crashing mid-write. It exists
// for the fault-injection substrate (faults.PartialWrite) and its tests;
// no production path calls it. The caller must drop the connection
// afterwards: the stream is unframeable from here on.
func (c *Conn) WriteTorn(kind Kind, payload any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(Msg{Kind: kind, Payload: payload}); err != nil {
		return fmt.Errorf("wire: encoding %v: %w", kind, err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing header: %w", err)
	}
	if _, err := c.rw.Write(body.Bytes()[:body.Len()/2]); err != nil {
		return fmt.Errorf("wire: writing torn body: %w", err)
	}
	return nil
}

// Read receives one message.
func (c *Conn) Read() (Msg, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(c.rw, hdr[:]); err != nil {
		return Msg{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return Msg{}, &FrameTooLargeError{Size: int64(n), Cap: MaxFrame}
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return Msg{}, fmt.Errorf("wire: reading body: %w", err)
	}
	var msg Msg
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&msg); err != nil {
		return Msg{}, fmt.Errorf("wire: decoding frame: %w", err)
	}
	return msg, nil
}

// Call performs a synchronous request/response round trip. A KindError
// reply is surfaced as a RemoteError.
func (c *Conn) Call(kind Kind, payload any) (Msg, error) {
	if err := c.Write(kind, payload); err != nil {
		return Msg{}, err
	}
	reply, err := c.Read()
	if err != nil {
		return Msg{}, err
	}
	if reply.Kind == KindError {
		if e, ok := reply.Payload.(Error); ok {
			return Msg{}, RemoteError{Text: e.Text}
		}
		return Msg{}, RemoteError{Text: "malformed error payload"}
	}
	return reply, nil
}

// CallContext is Call bounded by ctx: the context's deadline and
// cancellation are mapped onto the stream's I/O deadlines, so a stalled or
// unreachable peer cannot block the caller past the context. With a
// deadline-free, never-canceled context it degenerates to Call. The
// connection is left with no deadline armed on return; a call aborted by
// ctx leaves the stream desynchronized, so the caller must discard it
// (the transport pool does exactly that).
func (c *Conn) CallContext(ctx context.Context, kind Kind, payload any) (Msg, error) {
	if err := ctx.Err(); err != nil {
		return Msg{}, err
	}
	if _, ok := c.rw.(deadliner); ok && ctx.Done() != nil {
		// Arm the deadline and also watch for early cancellation: an
		// expired deadline makes the pending read/write return promptly.
		if dl, hasDL := ctx.Deadline(); hasDL {
			c.SetDeadline(dl)
		}
		stop := context.AfterFunc(ctx, func() { c.SetDeadline(time.Now()) })
		defer func() {
			stop()
			c.SetDeadline(time.Time{})
		}()
	}
	msg, err := c.Call(kind, payload)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Prefer the context's verdict over the raw i/o timeout error.
			return Msg{}, fmt.Errorf("wire: call %v: %w", kind, cerr)
		}
		// The socket deadline we armed from the context can fire a hair
		// before the context's own timer observes expiry; attribute such
		// an i/o timeout to the context deadline it came from.
		if errors.Is(err, os.ErrDeadlineExceeded) {
			if dl, hasDL := ctx.Deadline(); hasDL && !time.Now().Before(dl) {
				return Msg{}, fmt.Errorf("wire: call %v: %w", kind, context.DeadlineExceeded)
			}
		}
	}
	return msg, err
}

// WriteError replies with a remote error message.
func (c *Conn) WriteError(err error) error {
	return c.Write(KindError, Error{Text: err.Error()})
}

// IsWriteDeadline reports whether err is a reply-write deadline overrun —
// the failure a server sees when SetWriteTimeout fires because the peer
// stopped reading. Servers use it to count deadline hits separately from
// ordinary disconnects.
func IsWriteDeadline(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded)
}
