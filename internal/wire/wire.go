// Package wire frames the ECNP protocol messages for TCP transport: each
// frame is a 4-byte big-endian body length, a 1-byte codec tag, and the
// body. The tag selects how the body is encoded — gob (tag 0, every
// kind), the hand-rolled binary fast path (tag 1, the data-plane and
// other high-frequency kinds), traced binary (tag 2, binary v1 with a
// 16-byte request-trace slot), or tenant binary (tag 3, binary v1 with a
// 4-byte tenant slot ahead of the trace slot; see codec.go). Frames are
// independent
// (stateless codec per frame), so a connection can be taken over after
// any message boundary, a corrupted frame cannot poison decoder state,
// and the codecs interleave freely on one connection. A frame-size cap
// bounds memory against malformed peers.
package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/selection"
	"dfsqos/internal/trace"
)

// MaxFrame bounds a single message, comfortably above the largest data
// chunk (256 KiB) plus headers.
const MaxFrame = 4 << 20

// Kind identifies the message type.
type Kind uint16

// Control-plane and data-plane message kinds.
const (
	KindError Kind = iota
	// Mapper operations (DFSC/RM → MM).
	KindRegisterRM
	KindLookup
	KindRMsWithout
	KindAddReplica
	KindRemoveReplica
	KindBeginReplication
	KindEndReplication
	KindReplicaCount
	KindRMs
	// Mapper replies.
	KindAck
	KindRMList
	KindRMInfoList
	KindCount
	// Provider operations (DFSC/peer RM → RM).
	KindCFP
	KindBid
	KindOpen
	KindOpenResult
	KindClose
	KindOfferReplica
	KindOfferReply
	KindFinishReplica
	KindStoreFile
	// Data plane.
	KindReadFile
	KindFileChunk
	KindFileEnd
	KindWriteFile
	// Liveness (RM → MM) and reservation-lease keepalive (DFSC → RM).
	KindHeartbeat
	KindKeepalive
	// Shard-group control plane (MM shard → MM shard). All three ride the
	// gob codec: they are low-frequency control traffic, never the hot
	// path.
	KindShardBeat
	KindShardMirror
	KindShardHandoff
)

// kindNames is the package-level name table: Kind.String sits on the
// telemetry-label path of every request, so it must not rebuild (or
// allocate) a map per call.
var kindNames = [...]string{
	KindError: "Error", KindRegisterRM: "RegisterRM", KindLookup: "Lookup",
	KindRMsWithout: "RMsWithout", KindAddReplica: "AddReplica",
	KindRemoveReplica: "RemoveReplica", KindReplicaCount: "ReplicaCount",
	KindBeginReplication: "BeginReplication", KindEndReplication: "EndReplication",
	KindRMs: "RMs", KindAck: "Ack", KindRMList: "RMList",
	KindRMInfoList: "RMInfoList", KindCount: "Count", KindCFP: "CFP",
	KindBid: "Bid", KindOpen: "Open", KindOpenResult: "OpenResult",
	KindClose: "Close", KindOfferReplica: "OfferReplica",
	KindOfferReply: "OfferReply", KindFinishReplica: "FinishReplica",
	KindStoreFile: "StoreFile",
	KindReadFile:  "ReadFile", KindFileChunk: "FileChunk", KindFileEnd: "FileEnd",
	KindWriteFile: "WriteFile",
	KindHeartbeat: "Heartbeat", KindKeepalive: "Keepalive",
	KindShardBeat: "ShardBeat", KindShardMirror: "ShardMirror",
	KindShardHandoff: "ShardHandoff",
}

// String implements fmt.Stringer for diagnostics. Known kinds return an
// interned constant (zero allocations).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint16(k))
}

// Msg is one framed message.
type Msg struct {
	Kind    Kind
	Payload any

	// Trace is the span context this frame carries, if any: the zero
	// value means "untraced". Gob frames encode it as an ordinary
	// (omitted-when-zero) envelope field; fast-path frames carry it in
	// the tag-2 trace slot (or tag 3's, when a tenant rides too).
	// Servers join it with trace.Tracer.StartChild.
	Trace trace.SpanContext

	// Tenant is the tenant identity this frame was sent under: the zero
	// value (ids.NoneTenant) means untenanted. Gob frames encode it as
	// an (omitted-when-zero) envelope field; fast-path frames carry it
	// in the tag-3 tenant slot. Connections stamp it with
	// Conn.SetTenant; servers read it for per-tenant accounting.
	Tenant ids.TenantID

	// pooled is the frame buffer this message's payload borrows from
	// (fast-path FileChunk only: Data points into it); chunk is the
	// pooled payload struct. rreq is the pooled ReadFile a ranged
	// fast-path request decodes into. All are returned by Release.
	pooled *[]byte
	chunk  *FileChunk
	rreq   *ReadFile
}

// Chunk extracts a FileChunk payload regardless of codec: fast-path
// frames carry a pooled *FileChunk, gob frames a FileChunk value. It
// reports false for any other payload.
func (m *Msg) Chunk() (*FileChunk, bool) {
	switch p := m.Payload.(type) {
	case *FileChunk:
		return p, true
	case FileChunk:
		return &p, true
	}
	return nil, false
}

// ReadReq extracts a ReadFile payload regardless of codec or range form:
// legacy whole-file frames decode to a ReadFile value, ranged fast-path
// frames to a pooled *ReadFile (returned by Release — the copy handed
// back here stays valid afterwards). It reports false for any other
// payload.
func (m *Msg) ReadReq() (ReadFile, bool) {
	switch p := m.Payload.(type) {
	case ReadFile:
		return p, true
	case *ReadFile:
		return *p, true
	}
	return ReadFile{}, false
}

// Release returns a fast-path message's pooled resources (the frame
// buffer its FileChunk Data points into, and the FileChunk struct
// itself). The borrowed-buffer contract for stream loops:
//
//   - After Read returns a KindFileChunk Msg, the chunk's Data is only
//     valid until Release — copy or consume it first, never retain it.
//   - Call Release exactly once per received chunk when done; the Payload
//     is nilled so use-after-release fails loudly instead of silently
//     reading recycled bytes.
//   - Release on a gob-decoded or non-chunk Msg is a safe no-op, so
//     loops may release unconditionally.
//
// Skipping Release is a performance bug, not a correctness bug: the
// buffers fall to the GC and the stream loop allocates per chunk again.
func (m *Msg) Release() {
	if m.chunk == nil && m.pooled == nil && m.rreq == nil {
		return
	}
	if m.chunk != nil {
		m.chunk.Data = nil
		m.chunk.Offset = 0
		chunkPool.Put(m.chunk)
		m.chunk = nil
	}
	if m.rreq != nil {
		*m.rreq = ReadFile{}
		readReqPool.Put(m.rreq)
		m.rreq = nil
	}
	if m.pooled != nil {
		putBuf(m.pooled)
		m.pooled = nil
	}
	m.Payload = nil
}

// Payload structs not already defined by the ecnp package.
type (
	// RegisterRM carries an RM registration.
	RegisterRM struct {
		Info  ecnp.RMInfo
		Files []ids.FileID
	}
	// FileRef names a file (Lookup, RMsWithout, ReplicaCount, ReadFile).
	FileRef struct {
		File ids.FileID
	}
	// ReplicaRef names a (file, RM) pair (Add/RemoveReplica).
	ReplicaRef struct {
		File ids.FileID
		RM   ids.RMID
	}
	// BeginReplication reserves a pending replica (see ecnp.Mapper).
	BeginReplication struct {
		File     ids.FileID
		RM       ids.RMID
		MaxTotal int
	}
	// EndReplication resolves a reservation.
	EndReplication struct {
		File   ids.FileID
		RM     ids.RMID
		Commit bool
	}
	// RMList answers Lookup and RMsWithout.
	RMList struct {
		RMs []ids.RMID
	}
	// RMInfoList answers RMs.
	RMInfoList struct {
		Infos []ecnp.RMInfo
	}
	// Count answers ReplicaCount.
	Count struct {
		N int
	}
	// CloseReq releases a reservation.
	CloseReq struct {
		Request ids.RequestID
	}
	// OfferReply answers OfferReplica.
	OfferReply struct {
		Accepted bool
	}
	// FinishReplica finalizes a transfer at the destination.
	FinishReplica struct {
		Replication ids.ReplicationID
		Committed   bool
	}
	// ReadFile opens a data stream.
	ReadFile struct {
		File ids.FileID
		// ChunkSize is the server's streaming granularity hint in bytes.
		ChunkSize int
		// Offset is the byte position the stream starts at: 0 reads the
		// whole file; a failover resume picks up exactly where the
		// previous replica's stream died.
		Offset int64
		// Request, when non-zero, names the QoS reservation this stream
		// serves; the server treats each chunk as implicit lease renewal.
		Request ids.RequestID
		// Length, when positive, bounds the stream to [Offset,
		// Offset+Length): the server replies with exactly that byte range
		// (clamped at EOF) and a FileEnd whose checksum covers only the
		// range. Zero or negative streams to EOF — the original
		// whole-file semantics — and frames byte-identically to the
		// pre-ranged layout, so old peers interoperate as long as no
		// range is requested.
		Length int64
	}
	// WriteFile opens an inbound data stream: the sender follows with
	// FileChunk frames and a FileEnd, and the receiver stores the bytes
	// on its virtual disk. Replication identifies the transfer this
	// stream belongs to (0 for plain uploads).
	WriteFile struct {
		File        ids.FileID
		SizeBytes   int64
		Replication ids.ReplicationID
	}
	// FileChunk is one piece of streamed file data.
	FileChunk struct {
		Offset int64
		Data   []byte
	}
	// FileEnd terminates a stream with an integrity checksum.
	FileEnd struct {
		Size     int64
		Checksum uint64
	}
	// Ack is the empty success reply.
	Ack struct{}
	// Error carries a remote failure.
	Error struct {
		Text string
	}
	// Heartbeat is an RM's periodic liveness beacon to the MM.
	Heartbeat struct {
		RM ids.RMID
	}
	// Keepalive explicitly renews a reservation lease at the serving RM.
	Keepalive struct {
		Request ids.RequestID
	}
	// ShardBeat is one MM shard's periodic liveness beacon to a peer
	// shard. Shard is the sender's ring index.
	ShardBeat struct {
		Shard int32
	}
	// ShardMirror replays one replica-map mutation from the shard that
	// served it (the key's primary) to a successor shard holding a mirror
	// of the mapping. Op selects the mutation; the remaining fields carry
	// its arguments (unused ones stay zero). The receiver applies the
	// mutation locally and never re-mirrors, so mirrors cannot loop.
	ShardMirror struct {
		// Op is the mutation name: "AddReplica", "RemoveReplica",
		// "BeginReplication" or "EndReplication".
		Op       string
		File     ids.FileID
		RM       ids.RMID
		MaxTotal int
		Commit   bool
	}
	// ShardEntry is one file → replica-set mapping inside a handoff batch.
	ShardEntry struct {
		File ids.FileID
		RMs  []ids.RMID
	}
	// ShardHandoff re-replicates a slice of the keyspace between MM
	// shards: a takeover pushes a dead shard's mappings to the next
	// successor so the replication factor recovers, and a heal pushes a
	// revived shard's keyspace back to it. Infos carries the registration
	// records the entries reference, so a freshly restarted (empty) shard
	// can accept the mappings. Application is idempotent — entries the
	// receiver already holds are skipped.
	ShardHandoff struct {
		// From is the sending shard's ring index; Direction is "takeover"
		// or "heal" (telemetry and diagnostics).
		From      int32
		Direction string
		Infos     []ecnp.RMInfo
		Entries   []ShardEntry
	}
)

func init() {
	gob.Register(RegisterRM{})
	gob.Register(FileRef{})
	gob.Register(ReplicaRef{})
	gob.Register(BeginReplication{})
	gob.Register(EndReplication{})
	gob.Register(RMList{})
	gob.Register(RMInfoList{})
	gob.Register(Count{})
	gob.Register(CloseReq{})
	gob.Register(OfferReply{})
	gob.Register(FinishReplica{})
	gob.Register(ReadFile{})
	gob.Register(WriteFile{})
	gob.Register(FileChunk{})
	gob.Register(FileEnd{})
	gob.Register(Ack{})
	gob.Register(Error{})
	gob.Register(Heartbeat{})
	gob.Register(Keepalive{})
	gob.Register(ShardBeat{})
	gob.Register(ShardMirror{})
	gob.Register(ShardHandoff{})
	gob.Register(ecnp.CFP{})
	gob.Register(ecnp.OpenRequest{})
	gob.Register(ecnp.OpenResult{})
	gob.Register(ecnp.ReplicaOffer{})
	gob.Register(ecnp.StoreRequest{})
	gob.Register(ecnp.RMInfo{})
	gob.Register(selection.Bid{})
}

// ChecksumBasis is the FNV-1a offset basis: the initial state of the
// running checksum every data stream carries. A failover client threads
// one running state across segments served by different replicas; since
// an offset resume is byte-contiguous with its predecessor, the final
// FileEnd's whole-file checksum still verifies.
const ChecksumBasis uint64 = 14695981039346656037

// checksumPrime is the FNV-1a prime.
const checksumPrime uint64 = 1099511628211

// ChecksumUpdate folds data into an FNV-1a running state and returns the
// new state. The body is 8-way unrolled: FNV-1a is a serial recurrence
// (every step depends on the previous state), so the win is amortizing
// loop control and bounds checks, not lane parallelism — the result is
// bit-identical to the scalar definition (see checksumScalar and the
// equivalence tests).
func ChecksumUpdate(sum uint64, data []byte) uint64 {
	for len(data) >= 8 {
		d := data[:8] // one bounds check for the whole group
		sum = (sum ^ uint64(d[0])) * checksumPrime
		sum = (sum ^ uint64(d[1])) * checksumPrime
		sum = (sum ^ uint64(d[2])) * checksumPrime
		sum = (sum ^ uint64(d[3])) * checksumPrime
		sum = (sum ^ uint64(d[4])) * checksumPrime
		sum = (sum ^ uint64(d[5])) * checksumPrime
		sum = (sum ^ uint64(d[6])) * checksumPrime
		sum = (sum ^ uint64(d[7])) * checksumPrime
		data = data[8:]
	}
	for _, b := range data {
		sum = (sum ^ uint64(b)) * checksumPrime
	}
	return sum
}

// checksumScalar is the reference FNV-1a definition the unrolled
// ChecksumUpdate must match byte-for-byte (kept for equivalence tests).
func checksumScalar(sum uint64, data []byte) uint64 {
	for _, b := range data {
		sum ^= uint64(b)
		sum *= checksumPrime
	}
	return sum
}

// RemoteError is an error the peer *served* as a KindError reply: the RPC
// round trip itself completed, so the connection stays healthy and
// reusable. Callers distinguish it from transport failures with
//
//	var re wire.RemoteError
//	if errors.As(err, &re) { ... }
//
// (or transport.IsRemote), never by matching the error text.
type RemoteError struct {
	// Text is the peer's diagnostic message.
	Text string
}

// Error implements error. The "wire: remote error:" prefix is kept stable
// for log readability only; programmatic classification must use errors.As.
func (e RemoteError) Error() string { return "wire: remote error: " + e.Text }

// FrameTooLargeError reports a frame-size cap violation: an outgoing
// message that encoded past MaxFrame, or an incoming header announcing a
// body past the cap (a malformed or hostile peer). Match it with
//
//	var fe *wire.FrameTooLargeError
//	if errors.As(err, &fe) { ... }
//
// so transport and telemetry can classify cap violations apart from
// generic connection failures.
type FrameTooLargeError struct {
	// Kind is the message kind for outgoing violations; outgoing is
	// false (and Kind zero) for incoming ones, where the frame was
	// rejected before decoding.
	Kind Kind
	// Size is the offending frame's body size in bytes.
	Size int64
	// Cap is the limit that was exceeded (MaxFrame).
	Cap int64
	// Outgoing distinguishes encode-side from read-side violations.
	Outgoing bool
}

// Error implements error.
func (e *FrameTooLargeError) Error() string {
	if e.Outgoing {
		return fmt.Sprintf("wire: %v frame of %d bytes exceeds cap %d", e.Kind, e.Size, e.Cap)
	}
	return fmt.Sprintf("wire: incoming frame of %d bytes exceeds cap %d", e.Size, e.Cap)
}

// deadliner is the deadline surface of net.Conn (and net.Pipe).
type deadliner interface {
	SetDeadline(time.Time) error
}

// writeDeadliner is the write-side deadline surface of net.Conn.
type writeDeadliner interface {
	SetWriteDeadline(time.Time) error
}

// Conn frames messages over a reliable byte stream. Reads and writes are
// independently serialized, so one goroutine may stream reads while another
// writes.
type Conn struct {
	wmu sync.Mutex
	rmu sync.Mutex
	rw  io.ReadWriter
	// wt, guarded by wmu, arms a fresh write deadline per frame (servers
	// use it so a stalled reader cannot wedge a handler goroutine).
	wt time.Duration
	// fastWrite selects the binary codec for eligible outgoing kinds;
	// acceptBinary gates incoming binary frames (false: typed
	// *CodecError). Both default from the build (see fastpath_on.go).
	fastWrite    atomic.Bool
	acceptBinary atomic.Bool
	// rhdr, guarded by rmu, is the frame-header scratch for Read: a local
	// array would escape through the io.ReadFull interface call and cost
	// one heap allocation per frame.
	rhdr [headerSize]byte
	// tenant, when non-zero, is the ids.TenantID stamped on every
	// outgoing frame: fast-path frames switch to codec tag 3, gob frames
	// carry it in the envelope. Per-connection (not per-call) because a
	// client acts for exactly one tenant — stamping at dial time keeps
	// every write path's signature and allocation profile unchanged.
	tenant atomic.Int32
}

// NewConn wraps a byte stream (normally a *net.TCPConn).
func NewConn(rw io.ReadWriter) *Conn {
	c := &Conn{rw: rw}
	c.fastWrite.Store(defaultFastPath.Load())
	c.acceptBinary.Store(defaultAcceptBinary.Load())
	return c
}

// SetFastPath overrides the write-side codec choice for this connection:
// true routes eligible kinds through the binary fast path, false keeps
// everything on gob. Safe to call concurrently with traffic; it applies
// to frames written after the call.
func (c *Conn) SetFastPath(on bool) { c.fastWrite.Store(on) }

// SetAcceptBinary overrides whether this connection decodes incoming
// binary fast-path frames; when false they surface a typed *CodecError
// (the behavior of a gobonly-build endpoint). It applies to frames read
// after the call.
func (c *Conn) SetAcceptBinary(on bool) { c.acceptBinary.Store(on) }

// SetTenant stamps the tenant identity on every frame written from now
// on: eligible fast-path frames switch to the tag-3 tenant codec and gob
// frames carry Msg.Tenant. ids.NoneTenant (the default) restores
// untenanted framing. Safe to call concurrently with traffic.
func (c *Conn) SetTenant(t ids.TenantID) { c.tenant.Store(int32(t)) }

// Tenant returns the identity stamped by SetTenant.
func (c *Conn) Tenant() ids.TenantID { return c.tenantID() }

// tenantID loads the stamped tenant (the write paths' per-frame check).
func (c *Conn) tenantID() ids.TenantID { return ids.TenantID(c.tenant.Load()) }

// SetDeadline forwards an absolute deadline to the underlying stream when
// it supports one (net.Conn does; an in-memory buffer does not). It
// reports whether a deadline was applied. A zero time clears the deadline.
func (c *Conn) SetDeadline(t time.Time) bool {
	if d, ok := c.rw.(deadliner); ok {
		return d.SetDeadline(t) == nil
	}
	return false
}

// SetWriteTimeout arms a rolling per-frame write deadline: every Write
// gets d from its start to reach the kernel, independent of how long the
// connection has been open. Zero (the default) disables it. It is a no-op
// on streams without deadline support.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.wt = d
	c.wmu.Unlock()
}

// armWriteDeadlineLocked arms the rolling per-frame write deadline when
// one is configured. Caller holds wmu.
func (c *Conn) armWriteDeadlineLocked() {
	if c.wt > 0 {
		if wd, ok := c.rw.(writeDeadliner); ok {
			wd.SetWriteDeadline(time.Now().Add(c.wt))
		}
	}
}

// Write sends one message. Eligible kinds (the data plane and other
// high-frequency messages) go out on the binary fast path unless the
// connection is pinned to gob; everything else uses the stateless
// per-frame gob codec. Either way the frame leaves as a single write —
// header and body are assembled in one pooled buffer (chunks: one writev
// via WriteChunk) — so a frame costs one syscall, not two.
func (c *Conn) Write(kind Kind, payload any) error {
	if c.fastWrite.Load() {
		if kind == KindFileChunk {
			switch p := payload.(type) {
			case FileChunk:
				return c.WriteChunk(p.Offset, p.Data)
			case *FileChunk:
				return c.WriteChunk(p.Offset, p.Data)
			}
		} else if t := c.tenantID(); t.Valid() {
			return c.writeTenantFrame(t, trace.SpanContext{}, kind, payload)
		} else {
			bp := getBuf(64)
			b := append((*bp)[:0], 0, 0, 0, 0, byte(CodecBinary))
			if b2, ok := appendBinary(b, kind, payload); ok {
				*bp = b2
				n := len(b2) - headerSize
				if n > MaxFrame {
					putBuf(bp)
					return &FrameTooLargeError{Kind: kind, Size: int64(n), Cap: MaxFrame, Outgoing: true}
				}
				binary.BigEndian.PutUint32(b2[:4], uint32(n))
				err := c.writeFrame(b2, kind)
				putBuf(bp)
				if err == nil {
					codecMet.Load().txBinary.Inc()
				}
				return err
			}
			putBuf(bp)
		}
	}
	return c.writeGob(kind, payload)
}

// WriteTraced is Write carrying the span context tc on the frame, so the
// receiving server can join the sender's trace. A zero tc degrades to the
// untraced Write. Fast-path-eligible kinds go out as traced binary frames
// (codec tag 2, same pooled single-write discipline — zero allocations);
// everything else rides the gob envelope's Trace field. Chunks route
// through WriteChunkTraced.
func (c *Conn) WriteTraced(tc trace.SpanContext, kind Kind, payload any) error {
	if !tc.Valid() {
		return c.Write(kind, payload)
	}
	if c.fastWrite.Load() {
		if kind == KindFileChunk {
			switch p := payload.(type) {
			case FileChunk:
				return c.WriteChunkTraced(tc, p.Offset, p.Data)
			case *FileChunk:
				return c.WriteChunkTraced(tc, p.Offset, p.Data)
			}
		} else if t := c.tenantID(); t.Valid() {
			return c.writeTenantFrame(t, tc, kind, payload)
		} else {
			bp := getBuf(96)
			b := append((*bp)[:0], 0, 0, 0, 0, byte(CodecBinaryTraced))
			b = binary.BigEndian.AppendUint64(b, uint64(int64(tc.Trace)))
			b = binary.BigEndian.AppendUint64(b, tc.Span)
			if b2, ok := appendBinary(b, kind, payload); ok {
				*bp = b2
				n := len(b2) - headerSize
				if n > MaxFrame {
					putBuf(bp)
					return &FrameTooLargeError{Kind: kind, Size: int64(n), Cap: MaxFrame, Outgoing: true}
				}
				binary.BigEndian.PutUint32(b2[:4], uint32(n))
				err := c.writeFrame(b2, kind)
				putBuf(bp)
				if err == nil {
					codecMet.Load().txTraced.Inc()
				}
				return err
			}
			putBuf(bp)
		}
	}
	return c.writeGobMsg(Msg{Kind: kind, Payload: payload, Trace: tc})
}

// writeTenantFrame sends one tag-3 frame: the tenant slot, the trace
// slot (zero when untraced), then the binary-v1 body. Kinds the binary
// codec does not cover fall back to the gob envelope (writeGobMsg stamps
// the tenant there). Chunks never reach here — WriteChunk and
// WriteChunkTraced route them to writeChunkTenant.
func (c *Conn) writeTenantFrame(t ids.TenantID, tc trace.SpanContext, kind Kind, payload any) error {
	bp := getBuf(96)
	b := append((*bp)[:0], 0, 0, 0, 0, byte(CodecBinaryTenant))
	b = binary.BigEndian.AppendUint32(b, uint32(int32(t)))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(tc.Trace)))
	b = binary.BigEndian.AppendUint64(b, tc.Span)
	if b2, ok := appendBinary(b, kind, payload); ok {
		*bp = b2
		n := len(b2) - headerSize
		if n > MaxFrame {
			putBuf(bp)
			return &FrameTooLargeError{Kind: kind, Size: int64(n), Cap: MaxFrame, Outgoing: true}
		}
		binary.BigEndian.PutUint32(b2[:4], uint32(n))
		err := c.writeFrame(b2, kind)
		putBuf(bp)
		if err == nil {
			codecMet.Load().txTenant.Inc()
		}
		return err
	}
	putBuf(bp)
	return c.writeGobMsg(Msg{Kind: kind, Payload: payload, Trace: tc})
}

// writeGob sends one gob-framed message: the 5-byte header placeholder
// and the gob body are built in a single pooled buffer (so the gob
// encoder's output lands directly behind the header), then the whole
// frame goes out as one write.
func (c *Conn) writeGob(kind Kind, payload any) error {
	return c.writeGobMsg(Msg{Kind: kind, Payload: payload})
}

// writeGobMsg frames msg (including any Trace field — gob omits it when
// zero) as a gob frame. The connection's stamped tenant rides the
// envelope's Tenant field, so a tenant-stamped peer is identified on
// every codec, not just the fast path.
func (c *Conn) writeGobMsg(msg Msg) error {
	if !msg.Tenant.Valid() {
		msg.Tenant = c.tenantID()
	}
	kind := msg.Kind
	bp := getBuf(512)
	buf := bytes.NewBuffer((*bp)[:0])
	buf.Write(make([]byte, headerSize))
	if err := gob.NewEncoder(buf).Encode(msg); err != nil {
		putBuf(bp)
		return fmt.Errorf("wire: encoding %v: %w", kind, err)
	}
	b := buf.Bytes()
	*bp = b[:0] // adopt the (possibly regrown) backing array for the pool
	n := len(b) - headerSize
	if n > MaxFrame {
		putBuf(bp)
		return &FrameTooLargeError{Kind: kind, Size: int64(n), Cap: MaxFrame, Outgoing: true}
	}
	binary.BigEndian.PutUint32(b[:4], uint32(n))
	b[4] = byte(CodecGob)
	err := c.writeFrame(b, kind)
	putBuf(bp)
	if err == nil {
		codecMet.Load().txGob.Inc()
	}
	return err
}

// writeFrame pushes one fully assembled frame to the stream under the
// write lock and per-frame deadline.
func (c *Conn) writeFrame(frame []byte, kind Kind) error {
	c.wmu.Lock()
	c.armWriteDeadlineLocked()
	_, err := c.rw.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		return fmt.Errorf("wire: writing %v frame: %w", kind, err)
	}
	return nil
}

// WriteTorn writes a deliberately truncated frame: a header declaring the
// full body length followed by only half the body bytes. The peer blocks
// on the missing bytes until the connection drops, then surfaces an EOF
// mid-frame — the exact shape of a server crashing mid-write. It exists
// for the fault-injection substrate (faults.PartialWrite) and its tests;
// no production path calls it. The caller must drop the connection
// afterwards: the stream is unframeable from here on.
func (c *Conn) WriteTorn(kind Kind, payload any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(Msg{Kind: kind, Payload: payload}); err != nil {
		return fmt.Errorf("wire: encoding %v: %w", kind, err)
	}
	// Enforce the same outgoing cap as Write: a torn frame must still be
	// one the reader would have accepted, so the fault it injects is
	// "peer died mid-write", never "peer sent an oversized frame".
	if body.Len() > MaxFrame {
		return &FrameTooLargeError{Kind: kind, Size: int64(body.Len()), Cap: MaxFrame, Outgoing: true}
	}
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(body.Len()))
	hdr[4] = byte(CodecGob)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: writing header: %w", err)
	}
	if _, err := c.rw.Write(body.Bytes()[:body.Len()/2]); err != nil {
		return fmt.Errorf("wire: writing torn body: %w", err)
	}
	return nil
}

// Read receives one message. The frame body lands in a pooled buffer:
// gob frames decode out of it and return it immediately; fast-path
// FileChunk frames lend it to the returned Msg (Data points into it)
// until Msg.Release — see the borrowed-buffer contract there. Hostile
// input surfaces typed errors (*FrameTooLargeError for an oversized
// declared length, *CodecError for unknown tags or malformed binary
// bodies), never a panic.
func (c *Conn) Read() (Msg, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	if _, err := io.ReadFull(c.rw, c.rhdr[:]); err != nil {
		return Msg{}, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(c.rhdr[:4])
	codec := Codec(c.rhdr[4])
	if n > MaxFrame {
		return Msg{}, &FrameTooLargeError{Size: int64(n), Cap: MaxFrame}
	}
	bp := getBuf(int(n))
	body := (*bp)[:n]
	if _, err := io.ReadFull(c.rw, body); err != nil {
		putBuf(bp)
		return Msg{}, fmt.Errorf("wire: reading body: %w", err)
	}
	switch codec {
	case CodecGob:
		var msg Msg
		err := gob.NewDecoder(bytes.NewReader(body)).Decode(&msg)
		putBuf(bp)
		if err != nil {
			return Msg{}, fmt.Errorf("wire: decoding frame: %w", err)
		}
		codecMet.Load().rxGob.Inc()
		return msg, nil
	case CodecBinary:
		if !c.acceptBinary.Load() {
			putBuf(bp)
			return Msg{}, &CodecError{Codec: codec, Reason: "binary fast path not accepted by this endpoint"}
		}
		msg, retained, err := decodeBinary(body, bp)
		if !retained {
			putBuf(bp)
		}
		if err != nil {
			return Msg{}, err
		}
		codecMet.Load().rxBinary.Inc()
		return msg, nil
	case CodecBinaryTraced:
		if !c.acceptBinary.Load() {
			putBuf(bp)
			return Msg{}, &CodecError{Codec: codec, Reason: "binary fast path not accepted by this endpoint"}
		}
		if len(body) < traceSize {
			putBuf(bp)
			return Msg{}, &CodecError{Codec: codec, Reason: "body shorter than trace slot"}
		}
		tc := trace.SpanContext{
			Trace: ids.RequestID(int64(binary.BigEndian.Uint64(body[:8]))),
			Span:  binary.BigEndian.Uint64(body[8:16]),
		}
		msg, retained, err := decodeBinary(body[traceSize:], bp)
		if !retained {
			putBuf(bp)
		}
		if err != nil {
			return Msg{}, err
		}
		msg.Trace = tc
		codecMet.Load().rxTraced.Inc()
		return msg, nil
	case CodecBinaryTenant:
		if !c.acceptBinary.Load() {
			putBuf(bp)
			return Msg{}, &CodecError{Codec: codec, Reason: "binary fast path not accepted by this endpoint"}
		}
		if len(body) < tenantSize+traceSize {
			putBuf(bp)
			return Msg{}, &CodecError{Codec: codec, Reason: "body shorter than tenant and trace slots"}
		}
		ten := ids.TenantID(int32(binary.BigEndian.Uint32(body[:tenantSize])))
		tc := trace.SpanContext{
			Trace: ids.RequestID(int64(binary.BigEndian.Uint64(body[tenantSize : tenantSize+8]))),
			Span:  binary.BigEndian.Uint64(body[tenantSize+8 : tenantSize+16]),
		}
		msg, retained, err := decodeBinary(body[tenantSize+traceSize:], bp)
		if !retained {
			putBuf(bp)
		}
		if err != nil {
			return Msg{}, err
		}
		msg.Tenant = ten
		msg.Trace = tc
		codecMet.Load().rxTenant.Inc()
		return msg, nil
	default:
		putBuf(bp)
		return Msg{}, &CodecError{Codec: codec, Reason: "unknown codec tag"}
	}
}

// Call performs a synchronous request/response round trip. A KindError
// reply is surfaced as a RemoteError.
func (c *Conn) Call(kind Kind, payload any) (Msg, error) {
	return c.CallTraced(trace.SpanContext{}, kind, payload)
}

// CallTraced is Call with the span context tc stamped on the request
// frame (see WriteTraced). A zero tc is exactly Call.
func (c *Conn) CallTraced(tc trace.SpanContext, kind Kind, payload any) (Msg, error) {
	if err := c.WriteTraced(tc, kind, payload); err != nil {
		return Msg{}, err
	}
	reply, err := c.Read()
	if err != nil {
		return Msg{}, err
	}
	if reply.Kind == KindError {
		if e, ok := reply.Payload.(Error); ok {
			return Msg{}, RemoteError{Text: e.Text}
		}
		return Msg{}, RemoteError{Text: "malformed error payload"}
	}
	return reply, nil
}

// CallContext is Call bounded by ctx: the context's deadline and
// cancellation are mapped onto the stream's I/O deadlines, so a stalled or
// unreachable peer cannot block the caller past the context. With a
// deadline-free, never-canceled context it degenerates to Call. A span
// context attached to ctx (trace.NewContext) is stamped on the request
// frame, so trace propagation flows through every transport.Client.Call
// without widening its signature. The connection is left with no deadline
// armed on return; a call aborted by ctx leaves the stream
// desynchronized, so the caller must discard it (the transport pool does
// exactly that).
func (c *Conn) CallContext(ctx context.Context, kind Kind, payload any) (Msg, error) {
	if err := ctx.Err(); err != nil {
		return Msg{}, err
	}
	if _, ok := c.rw.(deadliner); ok && ctx.Done() != nil {
		// Arm the deadline and also watch for early cancellation: an
		// expired deadline makes the pending read/write return promptly.
		if dl, hasDL := ctx.Deadline(); hasDL {
			c.SetDeadline(dl)
		}
		stop := context.AfterFunc(ctx, func() { c.SetDeadline(time.Now()) })
		defer func() {
			stop()
			c.SetDeadline(time.Time{})
		}()
	}
	msg, err := c.CallTraced(trace.FromContext(ctx), kind, payload)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Prefer the context's verdict over the raw i/o timeout error.
			return Msg{}, fmt.Errorf("wire: call %v: %w", kind, cerr)
		}
		// The socket deadline we armed from the context can fire a hair
		// before the context's own timer observes expiry; attribute such
		// an i/o timeout to the context deadline it came from.
		if errors.Is(err, os.ErrDeadlineExceeded) {
			if dl, hasDL := ctx.Deadline(); hasDL && !time.Now().Before(dl) {
				return Msg{}, fmt.Errorf("wire: call %v: %w", kind, context.DeadlineExceeded)
			}
		}
	}
	return msg, err
}

// WriteError replies with a remote error message.
func (c *Conn) WriteError(err error) error {
	return c.Write(KindError, Error{Text: err.Error()})
}

// IsWriteDeadline reports whether err is a reply-write deadline overrun —
// the failure a server sees when SetWriteTimeout fires because the peer
// stopped reading. Servers use it to count deadline hits separately from
// ordinary disconnects.
func IsWriteDeadline(err error) bool {
	return errors.Is(err, os.ErrDeadlineExceeded)
}
