//go:build gobonly

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"dfsqos/internal/trace"
)

// The gobonly build tag models a legacy peer compiled without the binary
// fast path. Its contract: every outgoing frame (chunks included) is gob,
// and incoming binary frames fail with a typed *CodecError instead of
// being misparsed. `make gobonly` compiles and runs these.

func TestGobOnlyBuildEmitsGobFrames(t *testing.T) {
	if buildFastPath {
		t.Fatal("buildFastPath true in a gobonly build")
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteChunk(128, []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("gobonly chunk went out as %v", got)
	}
	msg, err := NewConn(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := msg.Chunk()
	if !ok || ch.Offset != 128 || string(ch.Data) != "legacy" {
		t.Fatalf("chunk mangled: %+v", msg.Payload)
	}
	msg.Release()
}

// TestGobOnlyBuildCarriesTraceOnGob: a legacy build still propagates
// span contexts — traced writes fall back to the gob envelope's Trace
// field instead of the tag-2 fast path.
func TestGobOnlyBuildCarriesTraceOnGob(t *testing.T) {
	tc := trace.SpanContext{Trace: 7, Span: 8}
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteTraced(tc, KindFileEnd, FileEnd{Size: 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChunkTraced(tc, 16, []byte("legacy traced")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := Codec(buf.Bytes()[4]); got != CodecGob {
			t.Fatalf("gobonly traced frame %d went out as %v", i, got)
		}
		msg, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Trace != tc {
			t.Fatalf("frame %d trace = %+v, want %+v", i, msg.Trace, tc)
		}
		msg.Release()
	}
}

// TestGobOnlyBuildRejectsTracedBinaryFrames: the tag-2 traced fast path
// is refused with the same typed error as tag 1.
func TestGobOnlyBuildRejectsTracedBinaryFrames(t *testing.T) {
	var buf bytes.Buffer
	// Forge the traced binary keepalive a fast-path peer would send.
	body := binary.BigEndian.AppendUint64(nil, 1) // trace id
	body = binary.BigEndian.AppendUint64(body, 2) // span id
	body = binary.BigEndian.AppendUint16(body, uint16(KindKeepalive))
	body = binary.BigEndian.AppendUint64(body, 3)
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(CodecBinaryTraced)
	buf.Write(hdr[:])
	buf.Write(body)

	_, err := NewConn(&buf).Read()
	var ce *CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("traced binary frame in gobonly build: err = %v, want CodecError", err)
	}
	if ce.Codec != CodecBinaryTraced {
		t.Fatalf("misreported codec: %+v", ce)
	}
}

func TestGobOnlyBuildRejectsBinaryFrames(t *testing.T) {
	var buf bytes.Buffer
	// Forge the binary chunk frame a fast-path peer would send.
	body := binary.BigEndian.AppendUint16(nil, uint16(KindFileChunk))
	body = binary.BigEndian.AppendUint64(body, 0)
	body = append(body, 'x')
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(CodecBinary)
	buf.Write(hdr[:])
	buf.Write(body)

	_, err := NewConn(&buf).Read()
	var ce *CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("binary frame in gobonly build: err = %v, want CodecError", err)
	}
	if ce.Codec != CodecBinary {
		t.Fatalf("misreported codec: %+v", ce)
	}
}
