//go:build gobonly

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// The gobonly build tag models a legacy peer compiled without the binary
// fast path. Its contract: every outgoing frame (chunks included) is gob,
// and incoming binary frames fail with a typed *CodecError instead of
// being misparsed. `make gobonly` compiles and runs these.

func TestGobOnlyBuildEmitsGobFrames(t *testing.T) {
	if buildFastPath {
		t.Fatal("buildFastPath true in a gobonly build")
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteChunk(128, []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("gobonly chunk went out as %v", got)
	}
	msg, err := NewConn(&buf).Read()
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := msg.Chunk()
	if !ok || ch.Offset != 128 || string(ch.Data) != "legacy" {
		t.Fatalf("chunk mangled: %+v", msg.Payload)
	}
	msg.Release()
}

func TestGobOnlyBuildRejectsBinaryFrames(t *testing.T) {
	var buf bytes.Buffer
	// Forge the binary chunk frame a fast-path peer would send.
	body := binary.BigEndian.AppendUint16(nil, uint16(KindFileChunk))
	body = binary.BigEndian.AppendUint64(body, 0)
	body = append(body, 'x')
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(CodecBinary)
	buf.Write(hdr[:])
	buf.Write(body)

	_, err := NewConn(&buf).Read()
	var ce *CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("binary frame in gobonly build: err = %v, want CodecError", err)
	}
	if ce.Codec != CodecBinary {
		t.Fatalf("misreported codec: %+v", ce)
	}
}
