package wire

import (
	"sync/atomic"

	"dfsqos/internal/telemetry"
)

// codecCounters is the frame-count split by direction and codec. The
// children are resolved once so the per-frame cost is one atomic pointer
// load plus one atomic increment.
type codecCounters struct {
	txBinary, txGob, txTraced, txTenant *telemetry.Counter
	rxBinary, rxGob, rxTraced, rxTenant *telemetry.Counter
}

// codecMet is the process-wide sink. It starts as an unregistered (live
// but unscraped) set so instrumentation needs no nil checks;
// RegisterCodecMetrics swaps in registry-backed counters.
var codecMet atomic.Pointer[codecCounters]

func init() { codecMet.Store(newCodecCounters(nil)) }

// newCodecCounters builds the four frame counters on reg (nil reg yields
// live, unregistered counters).
func newCodecCounters(reg *telemetry.Registry) *codecCounters {
	v := reg.NewCounterVec("dfsqos_wire_frames_total",
		"Frames moved on wire connections, by direction (tx/rx) and codec (binary/gob/binary-traced/binary-tenant).",
		"dir", "codec")
	return &codecCounters{
		txBinary: v.With("tx", "binary"),
		txGob:    v.With("tx", "gob"),
		txTraced: v.With("tx", "binary-traced"),
		txTenant: v.With("tx", "binary-tenant"),
		rxBinary: v.With("rx", "binary"),
		rxGob:    v.With("rx", "gob"),
		rxTraced: v.With("rx", "binary-traced"),
		rxTenant: v.With("rx", "binary-tenant"),
	}
}

// RegisterCodecMetrics exposes the fast-path/gob frame split on reg as
// dfsqos_wire_frames_total{dir,codec}, making the codec mix observable at
// /metrics. Counts accumulated before registration are not carried over,
// so daemons call this right after building their registry. The sink is
// process-wide (frames are counted wherever the Conn lives, client or
// server side).
func RegisterCodecMetrics(reg *telemetry.Registry) {
	codecMet.Store(newCodecCounters(reg))
}

// CodecStats snapshots the process-wide frame counters (tests and
// diagnostics).
func CodecStats() (txBinary, txGob, rxBinary, rxGob uint64) {
	m := codecMet.Load()
	return m.txBinary.Value(), m.txGob.Value(), m.rxBinary.Value(), m.rxGob.Value()
}

// CodecTracedStats snapshots the traced-binary (codec tag 2) frame
// counters.
func CodecTracedStats() (txTraced, rxTraced uint64) {
	m := codecMet.Load()
	return m.txTraced.Value(), m.rxTraced.Value()
}

// CodecTenantStats snapshots the tenant-binary (codec tag 3) frame
// counters.
func CodecTenantStats() (txTenant, rxTenant uint64) {
	m := codecMet.Load()
	return m.txTenant.Value(), m.rxTenant.Value()
}
