//go:build !gobonly

package wire

import (
	"bytes"
	"testing"
)

// TestDefaultBuildUsesFastPath pins the default build's behavior: eligible
// frames go out binary and binary frames are accepted, with no opt-in
// required. (The gobonly build's mirror-image test lives in
// gobonly_test.go; `make gobonly` runs it.)
func TestDefaultBuildUsesFastPath(t *testing.T) {
	if !buildFastPath {
		t.Fatal("buildFastPath false in a !gobonly build")
	}
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteChunk(0, []byte("hot")); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinary {
		t.Fatalf("default-build chunk went out as %v", got)
	}
	msg, err := NewConn(&buf).Read()
	if err != nil {
		t.Fatalf("default build rejected its own binary frame: %v", err)
	}
	if ch, ok := msg.Chunk(); !ok || string(ch.Data) != "hot" {
		t.Fatalf("chunk mangled: %+v", msg.Payload)
	}
	msg.Release()
}
