//go:build !gobonly

package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
)

const testTenant = ids.TenantID(42)

// TestWriteTenantBinaryRoundTrip drives every fast-path-eligible kind
// through the tenant binary codec (tag 3) on a tenant-stamped
// connection: the payload, the tenant and the span context must all
// survive, both traced and untraced.
func TestWriteTenantBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		kind    Kind
		payload any
	}{
		{KindFileEnd, FileEnd{Size: 4096, Checksum: 0xdeadbeef}},
		{KindReadFile, ReadFile{File: 7, ChunkSize: 128 << 10, Offset: 8192, Request: 42}},
		{KindWriteFile, WriteFile{File: 3, SizeBytes: 1 << 20, Replication: 9}},
		{KindAck, Ack{}},
		{KindError, Error{Text: "boom"}},
		{KindHeartbeat, Heartbeat{RM: 5}},
		{KindKeepalive, Keepalive{Request: 77}},
	}
	for _, traced := range []bool{false, true} {
		for _, tc := range cases {
			name := tc.kind.String()
			if traced {
				name += "/traced"
			}
			t.Run(name, func(t *testing.T) {
				var buf bytes.Buffer
				c := NewConn(&buf)
				c.SetTenant(testTenant)
				var err error
				if traced {
					err = c.WriteTraced(testTC, tc.kind, tc.payload)
				} else {
					err = c.Write(tc.kind, tc.payload)
				}
				if err != nil {
					t.Fatal(err)
				}
				if got := Codec(buf.Bytes()[4]); got != CodecBinaryTenant {
					t.Fatalf("frame codec = %v, want binary-tenant", got)
				}
				msg, err := c.Read()
				if err != nil {
					t.Fatal(err)
				}
				if msg.Tenant != testTenant {
					t.Fatalf("tenant = %v, want %v", msg.Tenant, testTenant)
				}
				wantTC := trace.SpanContext{}
				if traced {
					wantTC = testTC
				}
				if msg.Trace != wantTC {
					t.Fatalf("trace = %+v, want %+v", msg.Trace, wantTC)
				}
				if msg.Kind != tc.kind || msg.Payload != tc.payload {
					t.Fatalf("round trip = %v %#v, want %v %#v", msg.Kind, msg.Payload, tc.kind, tc.payload)
				}
			})
		}
	}
}

// TestWriteChunkTenantRoundTrip proves chunks from a tenant-stamped
// connection carry the tenant slot, with and without a trace, and that
// the borrowed-buffer contract is unchanged.
func TestWriteChunkTenantRoundTrip(t *testing.T) {
	for _, traced := range []bool{false, true} {
		var buf bytes.Buffer
		c := NewConn(&buf)
		c.SetTenant(testTenant)
		data := []byte("tenant chunk payload")
		var err error
		if traced {
			err = c.WriteChunkTraced(testTC, 1024, data)
		} else {
			err = c.WriteChunk(1024, data)
		}
		if err != nil {
			t.Fatal(err)
		}
		if got := Codec(buf.Bytes()[4]); got != CodecBinaryTenant {
			t.Fatalf("traced=%v: frame codec = %v, want binary-tenant", traced, got)
		}
		msg, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Tenant != testTenant {
			t.Fatalf("traced=%v: tenant = %v", traced, msg.Tenant)
		}
		if traced && msg.Trace != testTC {
			t.Fatalf("trace = %+v, want %+v", msg.Trace, testTC)
		}
		if !traced && msg.Trace.Valid() {
			t.Fatalf("untraced chunk grew a trace: %+v", msg.Trace)
		}
		ch, ok := msg.Chunk()
		if !ok || ch.Offset != 1024 || !bytes.Equal(ch.Data, data) {
			t.Fatalf("traced=%v: chunk = %+v ok=%v", traced, ch, ok)
		}
		msg.Release()
	}
}

// TestWriteReadReqTenant proves the per-segment ranged-read request
// carries the tenant slot on a stamped connection.
func TestWriteReadReqTenant(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetTenant(testTenant)
	req := ReadFile{File: 9, ChunkSize: 64 << 10, Offset: 4096, Request: 11, Length: 1 << 20}
	if err := c.WriteReadReq(testTC, req); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinaryTenant {
		t.Fatalf("frame codec = %v, want binary-tenant", got)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tenant != testTenant || msg.Trace != testTC {
		t.Fatalf("envelope = tenant %v trace %+v", msg.Tenant, msg.Trace)
	}
	got, ok := msg.ReadReq()
	if !ok || got != req {
		t.Fatalf("read req = %+v ok=%v, want %+v", got, ok, req)
	}
	msg.Release()
}

// TestGobFramesCarryTenant proves the universal gob codec carries the
// stamped tenant in the envelope — tenancy is not a fast-path-only
// property.
func TestGobFramesCarryTenant(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetTenant(testTenant)
	c.SetFastPath(false)
	if err := c.Write(KindCount, Count{N: 3}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("frame codec = %v, want gob", got)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tenant != testTenant {
		t.Fatalf("gob envelope tenant = %v, want %v", msg.Tenant, testTenant)
	}
	// Gob-ineligible kinds on a fast-path conn fall back to gob and must
	// still carry the tenant.
	c.SetFastPath(true)
	if err := c.Write(KindCount, Count{N: 4}); err != nil {
		t.Fatal(err)
	}
	msg, err = c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tenant != testTenant {
		t.Fatalf("fallback gob envelope tenant = %v", msg.Tenant)
	}
}

// TestUntenantedFramesUnchanged proves a connection without SetTenant
// frames exactly as before tag 3 existed: tag 1 untraced, tag 2 traced,
// and a gob envelope with no tenant field.
func TestUntenantedFramesUnchanged(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Write(KindAck, Ack{}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinary {
		t.Fatalf("untenanted untraced codec = %v, want binary", got)
	}
	buf.Reset()
	if err := c.WriteTraced(testTC, KindAck, Ack{}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinaryTraced {
		t.Fatalf("untenanted traced codec = %v, want binary-traced", got)
	}
	// Clearing the tenant restores untenanted framing.
	buf.Reset()
	c.SetTenant(testTenant)
	c.SetTenant(ids.NoneTenant)
	if err := c.Write(KindAck, Ack{}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinary {
		t.Fatalf("cleared-tenant codec = %v, want binary", got)
	}
}

// TestTenantFrameLayout pins the tag-3 byte layout documented in
// docs/ARCHITECTURE.md: header, tenant u32, trace i64 + span u64, kind
// u16, then the v1 payload.
func TestTenantFrameLayout(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetTenant(testTenant)
	if err := c.WriteChunkTraced(testTC, 0x0102030405060708, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	want := []byte{
		0, 0, 0, 32, // body length: 4+16+2+8+2
		3,           // codec tag binary-tenant
		0, 0, 0, 42, // tenant slot
		0, 0, 0, 0x11, 0x22, 0x33, 0x44, 0x55, // trace ID
		0, 0, 0, 0, 0, 0, 0, 0x99, // span ID
		0, byte(KindFileChunk), // kind
		1, 2, 3, 4, 5, 6, 7, 8, // offset
		0xAA, 0xBB, // data
	}
	if !bytes.Equal(frame, want) {
		t.Fatalf("tag-3 frame bytes\n got %v\nwant %v", frame, want)
	}
}

// TestTenantCodecHostileInput proves malformed tag-3 bodies surface
// typed CodecErrors, never panics, and that endpoints refusing binary
// refuse tag 3 too.
func TestTenantCodecHostileInput(t *testing.T) {
	short := frameBytes(CodecBinaryTenant, make([]byte, tenantSize+traceSize-1))
	c := NewConn(bytes.NewBuffer(short))
	_, err := c.Read()
	var ce *CodecError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "tenant") {
		t.Fatalf("short tenant body error = %v", err)
	}

	// Valid slots but a body the binary codec rejects.
	bad := frameBytes(CodecBinaryTenant, append(make([]byte, tenantSize+traceSize), binaryBody(KindFileEnd, []byte{1})...))
	c = NewConn(bytes.NewBuffer(bad))
	if _, err := c.Read(); !errors.As(err, &ce) {
		t.Fatalf("bad inner body error = %v", err)
	}

	// A gob-only endpoint refuses tag 3 with the typed error.
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetTenant(testTenant)
	if err := w.Write(KindAck, Ack{}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(false)
	if _, err := r.Read(); !errors.As(err, &ce) || ce.Codec != CodecBinaryTenant {
		t.Fatalf("gob-only endpoint error = %v", err)
	}
}

// TestCodecTenantStats proves the tag-3 frame counters move.
func TestCodecTenantStats(t *testing.T) {
	tx0, rx0 := CodecTenantStats()
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetTenant(testTenant)
	if err := c.WriteChunk(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	msg.Release()
	tx1, rx1 := CodecTenantStats()
	if tx1 != tx0+1 || rx1 != rx0+1 {
		t.Fatalf("tenant frame counters tx %d->%d rx %d->%d", tx0, tx1, rx0, rx1)
	}
}

// TestCodecStringCoversEveryTag pins the Codec.String table: every
// defined tag renders a name, unknown tags the numeric fallback.
func TestCodecStringCoversEveryTag(t *testing.T) {
	want := map[Codec]string{
		CodecGob:          "gob",
		CodecBinary:       "binary",
		CodecBinaryTraced: "binary-traced",
		CodecBinaryTenant: "binary-tenant",
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("Codec(%d).String() = %q, want %q", uint8(c), got, name)
		}
	}
	if got := Codec(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown codec string = %q", got)
	}
}

// TestKindStringCoversEveryKind walks the whole Kind enum and demands an
// interned name for each — a kind added without a kindNames entry fails
// here instead of rendering "Kind(n)" in telemetry labels.
func TestKindStringCoversEveryKind(t *testing.T) {
	for k := KindError; k <= KindShardHandoff; k++ {
		if name := k.String(); strings.HasPrefix(name, "Kind(") || name == "" {
			t.Errorf("Kind %d has no kindNames entry (String() = %q)", uint16(k), name)
		}
	}
	if got := Kind(60000).String(); got != "Kind(60000)" {
		t.Errorf("unknown kind string = %q", got)
	}
}
