package wire

import (
	"bytes"
	"errors"
	"testing"

	"dfsqos/internal/trace"
)

// TestRangedReadFileRoundTrip proves the ranged request form (Length > 0)
// round-trips on both codecs and surfaces through the ReadReq accessor,
// which is the only way servers should extract it (the payload is a
// pooled *ReadFile on the fast path and a plain value on gob).
func TestRangedReadFileRoundTrip(t *testing.T) {
	want := ReadFile{File: 7, ChunkSize: 65536, Offset: 4096, Request: 99, Length: 131072}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		var buf bytes.Buffer
		c := NewConn(&buf)
		c.SetFastPath(mode.fast)
		if err := c.Write(KindReadFile, want); err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		wantCodec := CodecGob
		if mode.fast {
			wantCodec = CodecBinary
		}
		if got := Codec(buf.Bytes()[4]); got != wantCodec {
			t.Errorf("%s: frame tagged %v, want %v", mode.name, got, wantCodec)
		}
		r := NewConn(&buf)
		r.SetAcceptBinary(true)
		msg, err := r.Read()
		if err != nil {
			t.Fatalf("%s: decode: %v", mode.name, err)
		}
		got, ok := msg.ReadReq()
		if !ok {
			t.Fatalf("%s: ReadReq reported false for %T", mode.name, msg.Payload)
		}
		if got != want {
			t.Errorf("%s: got %+v want %+v", mode.name, got, want)
		}
		msg.Release()
		if msg.Payload != nil && mode.fast {
			t.Errorf("%s: Release left Payload set", mode.name)
		}
	}
}

// TestRangedReadFileFrameCompat pins the interop contract: a whole-file
// request (Length == 0) must frame byte-identically to the pre-ranged
// 28-byte layout, so peers that predate the length field keep working.
func TestRangedReadFileFrameCompat(t *testing.T) {
	var plain, zero bytes.Buffer
	for _, pair := range []struct {
		buf *bytes.Buffer
		req ReadFile
	}{
		{&plain, ReadFile{File: 3, ChunkSize: 1024, Offset: 512, Request: 8}},
		{&zero, ReadFile{File: 3, ChunkSize: 1024, Offset: 512, Request: 8, Length: 0}},
	} {
		c := NewConn(pair.buf)
		c.SetFastPath(true)
		if err := c.Write(KindReadFile, pair.req); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(plain.Bytes(), zero.Bytes()) {
		t.Fatalf("Length==0 frame differs from legacy frame:\n%x\n%x", plain.Bytes(), zero.Bytes())
	}
	wantBody := headerSize + kindSize + 28
	if plain.Len() != wantBody {
		t.Fatalf("whole-file frame is %d bytes, want %d (legacy layout)", plain.Len(), wantBody)
	}
	var ranged bytes.Buffer
	c := NewConn(&ranged)
	c.SetFastPath(true)
	if err := c.Write(KindReadFile, ReadFile{File: 3, ChunkSize: 1024, Offset: 512, Request: 8, Length: 256}); err != nil {
		t.Fatal(err)
	}
	if ranged.Len() != wantBody+8 {
		t.Fatalf("ranged frame is %d bytes, want %d (trailing length field)", ranged.Len(), wantBody+8)
	}
}

// TestRangedReadFileMalformedLength proves the dual-length decode stays
// strict: only 28- and 36-byte bodies are valid ReadFile layouts, and
// anything between or beyond is a typed CodecError.
func TestRangedReadFileMalformedLength(t *testing.T) {
	for _, n := range []int{29, 35, 37} {
		var buf bytes.Buffer
		writeRawFrame(&buf, CodecBinary, binaryBody(KindReadFile, make([]byte, n)))
		r := NewConn(&buf)
		r.SetAcceptBinary(true)
		_, err := r.Read()
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Fatalf("%d-byte payload: want CodecError, got %v", n, err)
		}
		if ce.Kind != KindReadFile {
			t.Errorf("%d-byte payload: CodecError kind %v, want ReadFile", n, ce.Kind)
		}
	}
}

// BenchmarkEncodeRangedRead measures putting one ranged ReadFile request
// on the wire — the per-segment control cost of a striped read. The fast
// sub-benchmark is gated at 0 allocs/op by scripts/bench.sh.
func BenchmarkEncodeRangedRead(b *testing.B) {
	req := ReadFile{File: 7, ChunkSize: 128 * 1024, Offset: 1 << 20, Request: 42, Length: 1 << 20}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewConn(discardRW{})
			c.SetFastPath(mode.fast)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteReadReq(trace.SpanContext{}, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeRangedRead measures decoding the ranged request frame;
// the fast path borrows a pooled ReadFile (0 allocs/op with Release,
// gated by scripts/bench.sh).
func BenchmarkDecodeRangedRead(b *testing.B) {
	req := ReadFile{File: 7, ChunkSize: 128 * 1024, Offset: 1 << 20, Request: 42, Length: 1 << 20}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var buf bytes.Buffer
			w := NewConn(&buf)
			w.SetFastPath(mode.fast)
			if err := w.Write(KindReadFile, req); err != nil {
				b.Fatal(err)
			}
			r := NewConn(&loopRW{frame: buf.Bytes()})
			r.SetAcceptBinary(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg, err := r.Read()
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}
