package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// frameBytes assembles a complete frame for the seed corpus.
func frameBytes(codec Codec, body []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(body))
	binary.BigEndian.PutUint32(out[:4], uint32(len(body)))
	out[4] = byte(codec)
	return append(out, body...)
}

// gobFrame encodes (kind, payload) through the real writer for the corpus.
func gobFrame(kind Kind, payload any) []byte {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetFastPath(false)
	if err := c.Write(kind, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzRead feeds arbitrary byte streams to Conn.Read. The invariant under
// hostile input is "typed error or valid message, never a panic": short
// headers, truncated bodies, oversized declared lengths, unknown codec
// tags, garbage gob, and malformed binary layouts must all surface as
// errors while leaving the buffer pools consistent.
func FuzzRead(f *testing.F) {
	// Valid frames of both codecs.
	f.Add(gobFrame(KindCount, Count{N: 7}))
	f.Add(gobFrame(KindFileChunk, FileChunk{Offset: 8, Data: []byte("abc")}))
	f.Add(frameBytes(CodecBinary, binaryBody(KindFileChunk,
		append(binary.BigEndian.AppendUint64(nil, 16), "data bytes"...))))
	f.Add(frameBytes(CodecBinary, binaryBody(KindFileEnd, make([]byte, 16))))
	f.Add(frameBytes(CodecBinary, binaryBody(KindAck, nil)))
	f.Add(frameBytes(CodecBinary, binaryBody(KindError, []byte("boom"))))
	// Traced (tag 2) and tenant (tag 3) frames: the slot(s) precede a
	// plain binary-v1 body.
	f.Add(frameBytes(CodecBinaryTraced, append(make([]byte, traceSize),
		binaryBody(KindFileChunk, append(binary.BigEndian.AppendUint64(nil, 16), "data bytes"...))...)))
	f.Add(frameBytes(CodecBinaryTraced, append(make([]byte, traceSize), binaryBody(KindAck, nil)...)))
	f.Add(frameBytes(CodecBinaryTenant, append(make([]byte, tenantSize+traceSize),
		binaryBody(KindFileChunk, append(binary.BigEndian.AppendUint64(nil, 16), "data bytes"...))...)))
	f.Add(frameBytes(CodecBinaryTenant, append(make([]byte, tenantSize+traceSize), binaryBody(KindKeepalive, make([]byte, 8))...)))
	// Two valid frames back to back (multi-frame streams).
	f.Add(append(gobFrame(KindAck, Ack{}),
		frameBytes(CodecBinary, binaryBody(KindKeepalive, make([]byte, 8)))...))
	// Hostile shapes.
	f.Add([]byte{})
	f.Add([]byte{0, 0})                                                        // short header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0})                                   // oversized declared length
	f.Add([]byte{0, 0, 1, 0, 0, 1, 2})                                         // truncated body
	f.Add(frameBytes(Codec(200), []byte{1, 2, 3}))                             // unknown codec tag
	f.Add(frameBytes(CodecGob, []byte{1, 2, 3, 4}))                            // garbage gob
	f.Add(frameBytes(CodecBinary, nil))                                        // binary body shorter than kind
	f.Add(frameBytes(CodecBinary, binaryBody(KindFileChunk, []byte{1})))       // short chunk
	f.Add(frameBytes(CodecBinary, binaryBody(KindReadFile, make([]byte, 5))))  // wrong fixed len
	f.Add(frameBytes(CodecBinary, binaryBody(Kind(60000), []byte("??"))))      // uncovered kind
	f.Add(frameBytes(CodecBinaryTraced, make([]byte, traceSize-1)))            // short trace slot
	f.Add(frameBytes(CodecBinaryTenant, make([]byte, tenantSize+traceSize-1))) // short tenant+trace slots
	f.Add(frameBytes(CodecBinaryTenant, make([]byte, tenantSize+traceSize)))   // slots but no kind

	f.Fuzz(func(t *testing.T, stream []byte) {
		c := NewConn(bytes.NewBuffer(stream))
		for {
			msg, err := c.Read()
			if err != nil {
				return // any error ends the stream; the invariant is no panic
			}
			if ch, ok := msg.Chunk(); ok {
				_ = ChecksumUpdate(ChecksumBasis, ch.Data) // touch every borrowed byte
			}
			msg.Release()
		}
	})
}

// FuzzBinaryChunkRoundTrip drives the fast-path encoder and decoder
// against each other: any (offset, data) pair must survive the writev
// framing byte-for-byte.
func FuzzBinaryChunkRoundTrip(f *testing.F) {
	f.Add(int64(0), []byte(nil))
	f.Add(int64(1), []byte("x"))
	f.Add(int64(-1), []byte("negative offsets must survive the unsigned layout"))
	f.Add(int64(1<<40), bytes.Repeat([]byte{0xa5}, 1024))

	f.Fuzz(func(t *testing.T, offset int64, data []byte) {
		var buf bytes.Buffer
		w := NewConn(&buf)
		w.SetFastPath(true)
		if err := w.WriteChunk(offset, data); err != nil {
			t.Fatalf("WriteChunk(%d, %d bytes): %v", offset, len(data), err)
		}
		r := NewConn(&buf)
		r.SetAcceptBinary(true)
		msg, err := r.Read()
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		ch, ok := msg.Chunk()
		if !ok {
			t.Fatalf("payload %T is not a chunk", msg.Payload)
		}
		if ch.Offset != offset {
			t.Fatalf("offset %d → %d", offset, ch.Offset)
		}
		if !bytes.Equal(ch.Data, data) {
			t.Fatalf("%d data bytes mangled", len(data))
		}
		msg.Release()
	})
}

// FuzzChecksumEquivalence pins the unrolled ChecksumUpdate to the scalar
// FNV-1a definition for arbitrary inputs and split points.
func FuzzChecksumEquivalence(f *testing.F) {
	f.Add([]byte(nil), uint8(0))
	f.Add([]byte("abcdefgh"), uint8(3))
	f.Add(bytes.Repeat([]byte{7}, 100), uint8(50))

	f.Fuzz(func(t *testing.T, data []byte, cutByte uint8) {
		whole := ChecksumUpdate(ChecksumBasis, data)
		if want := checksumScalar(ChecksumBasis, data); whole != want {
			t.Fatalf("unrolled %x != scalar %x over %d bytes", whole, want, len(data))
		}
		cut := 0
		if len(data) > 0 {
			cut = int(cutByte) % (len(data) + 1)
		}
		split := ChecksumUpdate(ChecksumUpdate(ChecksumBasis, data[:cut]), data[cut:])
		if split != whole {
			t.Fatalf("split at %d: %x != whole %x", cut, split, whole)
		}
	})
}
