package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/units"
)

// writeRawFrame forges a frame with an arbitrary codec tag and body,
// bypassing the encoder (hostile-input plumbing for decoder tests).
func writeRawFrame(buf *bytes.Buffer, codec Codec, body []byte) {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)))
	hdr[4] = byte(codec)
	buf.Write(hdr[:])
	buf.Write(body)
}

// binaryBody assembles a binary-v1 body: kind field plus raw payload bytes.
func binaryBody(kind Kind, payload []byte) []byte {
	b := binary.BigEndian.AppendUint16(nil, uint16(kind))
	return append(b, payload...)
}

func TestFastPathFramesCarryBinaryTag(t *testing.T) {
	// Every eligible kind must leave a fast-path connection with the
	// binary codec tag and round-trip intact.
	cases := []struct {
		kind Kind
		body any
	}{
		{KindFileEnd, FileEnd{Size: 1 << 40, Checksum: 0xfeedface}},
		{KindReadFile, ReadFile{File: 7, ChunkSize: 65536, Offset: 1024, Request: 99}},
		{KindWriteFile, WriteFile{File: 3, SizeBytes: 1 << 30, Replication: 12}},
		{KindAck, Ack{}},
		{KindError, Error{Text: "disk exploded"}},
		{KindHeartbeat, Heartbeat{RM: 5}},
		{KindKeepalive, Keepalive{Request: 41}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		c := NewConn(&buf)
		c.SetFastPath(true)
		if err := c.Write(tc.kind, tc.body); err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if got := Codec(buf.Bytes()[4]); got != CodecBinary {
			t.Errorf("%v went out as %v, want binary", tc.kind, got)
		}
		r := NewConn(&buf)
		r.SetAcceptBinary(true) // decode must work even under a gobonly default
		msg, err := r.Read()
		if err != nil {
			t.Fatalf("%v: decode: %v", tc.kind, err)
		}
		if msg.Kind != tc.kind {
			t.Errorf("%v decoded as %v", tc.kind, msg.Kind)
		}
		if msg.Payload != tc.body {
			t.Errorf("%v payload: got %+v want %+v", tc.kind, msg.Payload, tc.body)
		}
	}
	// Negative offsets and ids survive the unsigned wire layout.
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetFastPath(true)
	if err := c.WriteChunk(-1, []byte{9}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(true)
	msg, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := msg.Chunk()
	if !ok || ch.Offset != -1 || len(ch.Data) != 1 || ch.Data[0] != 9 {
		t.Fatalf("negative-offset chunk mangled: %+v", msg.Payload)
	}
	msg.Release()
}

func TestIneligibleKindsStayOnGob(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetFastPath(true)
	if err := c.Write(KindCFP, ecnp.CFP{Request: 1, File: 2, Bitrate: units.Mbps(2), DurationSec: 60}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("control frame went out as %v, want gob", got)
	}
	if _, err := NewConn(&buf).Read(); err != nil {
		t.Fatal(err)
	}
}

func TestFastWriterRejectedByGobOnlyReader(t *testing.T) {
	// Satellite interop contract: a fast-path writer talking to an
	// endpoint that does not accept binary frames (a gobonly build) must
	// fail with a typed *CodecError, not garbage or a panic.
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetFastPath(true)
	if err := w.WriteChunk(0, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(false)
	_, err := r.Read()
	var ce *CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("rejection not a CodecError: %v", err)
	}
	if ce.Codec != CodecBinary {
		t.Fatalf("rejected codec %v, want binary", ce.Codec)
	}
	if !strings.Contains(ce.Error(), "not accepted") {
		t.Fatalf("unhelpful rejection: %q", ce.Error())
	}
}

func TestGobWriterReadByFastReader(t *testing.T) {
	// The reverse direction: a gob-pinned writer (legacy peer) must
	// interoperate transparently with a fast-path reader, including for
	// kinds that are binary-eligible.
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetFastPath(false)
	data := []byte("gob-framed chunk")
	if err := w.WriteChunk(512, data); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(KindFileEnd, FileEnd{Size: 16, Checksum: 0xabc}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("pinned writer emitted %v", got)
	}
	r := NewConn(&buf)
	msg, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	ch, ok := msg.Chunk()
	if !ok || ch.Offset != 512 || !bytes.Equal(ch.Data, data) {
		t.Fatalf("gob chunk mangled: %+v", msg.Payload)
	}
	msg.Release() // no-op on gob messages, must be safe
	end, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if fe, ok := end.Payload.(FileEnd); !ok || fe.Checksum != 0xabc {
		t.Fatalf("gob FileEnd mangled: %+v", end.Payload)
	}
}

func TestMixedCodecInterleave(t *testing.T) {
	// Control frames (gob) and data frames (binary) interleaved on one
	// stream must all decode: per-frame codec tags, no shared state, no
	// decoder poisoning in either direction.
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetFastPath(true)
	chunk0 := []byte("first chunk")
	chunk1 := []byte("second chunk")
	if err := w.Write(KindCFP, ecnp.CFP{Request: 1, File: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(0, chunk0); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(KindOpen, ecnp.OpenRequest{Request: 1, File: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteChunk(int64(len(chunk0)), chunk1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(KindFileEnd, FileEnd{Size: int64(len(chunk0) + len(chunk1))}); err != nil {
		t.Fatal(err)
	}

	r := NewConn(&buf)
	r.SetAcceptBinary(true)
	wantKinds := []Kind{KindCFP, KindFileChunk, KindOpen, KindFileChunk, KindFileEnd}
	var got []byte
	for i, want := range wantKinds {
		msg, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if msg.Kind != want {
			t.Fatalf("frame %d: kind %v, want %v", i, msg.Kind, want)
		}
		if ch, ok := msg.Chunk(); ok {
			got = append(got, ch.Data...)
		}
		msg.Release()
	}
	if want := string(chunk0) + string(chunk1); string(got) != want {
		t.Fatalf("reassembled %q, want %q", got, want)
	}
}

func TestUnknownCodecTagRejected(t *testing.T) {
	var buf bytes.Buffer
	writeRawFrame(&buf, Codec(7), []byte{1, 2, 3})
	_, err := NewConn(&buf).Read()
	var ce *CodecError
	if !errors.As(err, &ce) {
		t.Fatalf("unknown tag not a CodecError: %v", err)
	}
	if ce.Codec != Codec(7) || !strings.Contains(ce.Reason, "unknown codec") {
		t.Fatalf("misreported: %+v", ce)
	}
}

func TestBinaryMalformedBodiesRejected(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		kind Kind // expected in the CodecError, 0 when never decoded
	}{
		{"empty body", nil, 0},
		{"one-byte body", []byte{0}, 0},
		{"chunk shorter than offset", binaryBody(KindFileChunk, []byte{1, 2, 3}), KindFileChunk},
		{"fileend short", binaryBody(KindFileEnd, make([]byte, 15)), KindFileEnd},
		{"fileend long", binaryBody(KindFileEnd, make([]byte, 17)), KindFileEnd},
		{"readfile wrong len", binaryBody(KindReadFile, make([]byte, 27)), KindReadFile},
		{"writefile wrong len", binaryBody(KindWriteFile, make([]byte, 19)), KindWriteFile},
		{"ack with payload", binaryBody(KindAck, []byte{1}), KindAck},
		{"heartbeat wrong len", binaryBody(KindHeartbeat, make([]byte, 5)), KindHeartbeat},
		{"keepalive wrong len", binaryBody(KindKeepalive, make([]byte, 7)), KindKeepalive},
		{"uncovered kind", binaryBody(KindCFP, nil), KindCFP},
		{"unknown kind", binaryBody(Kind(999), nil), Kind(999)},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		writeRawFrame(&buf, CodecBinary, tc.body)
		r := NewConn(&buf)
		r.SetAcceptBinary(true)
		_, err := r.Read()
		var ce *CodecError
		if !errors.As(err, &ce) {
			t.Errorf("%s: not a CodecError: %v", tc.name, err)
			continue
		}
		if ce.Kind != tc.kind {
			t.Errorf("%s: CodecError kind %v, want %v", tc.name, ce.Kind, tc.kind)
		}
	}
}

func TestWriteTornEnforcesCap(t *testing.T) {
	// Satellite: WriteTorn must apply the same MaxFrame outgoing check as
	// Write — a torn frame simulates "peer died mid-write", never "peer
	// sent an oversized frame" — and must leave nothing on the stream.
	var buf bytes.Buffer
	c := NewConn(&buf)
	err := c.WriteTorn(KindFileChunk, FileChunk{Data: make([]byte, MaxFrame+1)})
	var fe *FrameTooLargeError
	if !errors.As(err, &fe) {
		t.Fatalf("oversize torn write not a FrameTooLargeError: %v", err)
	}
	if !fe.Outgoing || fe.Kind != KindFileChunk {
		t.Fatalf("misreported: %+v", fe)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes leaked onto the stream before the cap check", buf.Len())
	}
}

func TestReleaseIdempotentAndNilsPayload(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetFastPath(true)
	if err := w.WriteChunk(64, []byte("once")); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(true)
	msg, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.Chunk(); !ok {
		t.Fatalf("payload %T is not a chunk", msg.Payload)
	}
	msg.Release()
	if msg.Payload != nil {
		t.Fatal("Payload survives Release — use-after-release would read recycled bytes silently")
	}
	msg.Release() // second release must be a no-op, not a double-Put
	var gobMsg Msg
	gobMsg.Release() // zero Msg release is safe too
}

func TestCodecStatsObserveBothPaths(t *testing.T) {
	tx0, txg0, rx0, rxg0 := CodecStats()
	var buf bytes.Buffer
	w := NewConn(&buf)
	w.SetFastPath(true)
	if err := w.WriteChunk(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(KindCFP, ecnp.CFP{}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(true)
	for i := 0; i < 2; i++ {
		msg, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
	}
	tx1, txg1, rx1, rxg1 := CodecStats()
	if tx1 <= tx0 || txg1 <= txg0 || rx1 <= rx0 || rxg1 <= rxg0 {
		t.Fatalf("counters did not all advance: tx %d→%d txGob %d→%d rx %d→%d rxGob %d→%d",
			tx0, tx1, txg0, txg1, rx0, rx1, rxg0, rxg1)
	}
}

func TestChecksumUnrolledMatchesScalar(t *testing.T) {
	// The 8-way unrolled ChecksumUpdate must be bit-identical to the
	// scalar FNV-1a definition at every length straddling the unroll
	// boundary, and from arbitrary (non-basis) starting states.
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i*37 + 11)
	}
	for n := 0; n <= len(data); n++ {
		if got, want := ChecksumUpdate(ChecksumBasis, data[:n]), checksumScalar(ChecksumBasis, data[:n]); got != want {
			t.Fatalf("len %d: unrolled %x != scalar %x", n, got, want)
		}
	}
	state := uint64(0x1234_5678_9abc_def0)
	for _, n := range []int{7, 8, 9, 15, 16, 17, 63, 64, 65} {
		if got, want := ChecksumUpdate(state, data[:n]), checksumScalar(state, data[:n]); got != want {
			t.Fatalf("state %x len %d: unrolled %x != scalar %x", state, n, got, want)
		}
	}
	if ChecksumBytesWire := ChecksumUpdate(ChecksumBasis, []byte("abc")); ChecksumBytesWire == ChecksumBasis {
		t.Fatal("checksum did not absorb input")
	}
}

func TestSetDefaultFastPathSeedsNewConns(t *testing.T) {
	prev := SetDefaultFastPath(false)
	defer SetDefaultFastPath(prev)
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteChunk(0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("conn created under gob default emitted %v", got)
	}
	SetDefaultFastPath(true)
	var buf2 bytes.Buffer
	c2 := NewConn(&buf2)
	if err := c2.WriteChunk(0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf2.Bytes()[4]); got != CodecBinary {
		t.Fatalf("conn created under fast default emitted %v", got)
	}
}

func TestCodecString(t *testing.T) {
	if CodecGob.String() != "gob" || CodecBinary.String() != "binary" {
		t.Fatalf("codec names: %v %v", CodecGob, CodecBinary)
	}
	if got := Codec(9).String(); got != "codec(9)" {
		t.Fatalf("unknown codec renders %q", got)
	}
}
