// Fast-path binary codec for the data plane and other high-frequency
// frames. The frame header carries a one-byte codec tag, so every frame
// independently declares how its body is encoded: gob (tag 0, the
// stateless reflection codec every kind supports), binary v1 (tag 1, a
// hand-rolled fixed-layout encoding for the hot kinds), or traced binary
// (tag 2, the same layout with a 16-byte trace slot ahead of the kind).
// All three codecs can interleave freely on one connection — the reader
// dispatches per frame, and no codec keeps cross-frame state, so the
// "stateless frame" recovery property of the original gob framing is
// preserved.
//
// Binary v1 body layout (big-endian throughout):
//
//	[0:2]  uint16 kind
//	[2:]   payload, fixed layout per kind:
//	  FileChunk:  offset u64 | data (rest of body, length implicit)
//	  FileEnd:    size u64 | checksum u64
//	  ReadFile:   file i32 | chunkSize i64 | offset i64 | request i64 [| length i64]
//	              (the trailing length is present only for ranged reads —
//	              Length > 0 — so a whole-file request frames byte-identically
//	              to the pre-ranged layout; the decoder accepts both lengths)
//	  WriteFile:  file i32 | sizeBytes i64 | replication i64
//	  Ack:        (empty)
//	  Error:      text (rest of body, UTF-8)
//	  Heartbeat:  rm i32
//	  Keepalive:  request i64
//
// Traced binary (tag 2) body layout:
//
//	[0:8]   int64 trace ID (ids.RequestID)
//	[8:16]  uint64 span ID
//	[16:]   a binary-v1 body (kind + payload as above)
//
// Tenant binary (tag 3) body layout — the tenant slot ahead of the trace
// slot, claimed per the same versioning rule when tenancy landed:
//
//	[0:4]   int32 tenant ID (ids.TenantID)
//	[4:12]  int64 trace ID (ids.RequestID; zero = untraced)
//	[12:20] uint64 span ID (zero = untraced)
//	[20:]   a binary-v1 body (kind + payload as above)
//
// A tag-3 frame always carries both slots: a connection stamped with a
// tenant (Conn.SetTenant) sends every eligible frame as tag 3 whether or
// not it is traced, with a zero trace slot meaning "untraced", so the
// data plane never branches per frame on trace presence.
//
// All other kinds stay on gob (which carries the trace slot and tenant
// as optional Msg fields instead). To promote a kind to the fast path it
// must be (a) high-frequency enough to matter, (b) fixed-layout (or
// one-variable-tail like FileChunk/Error), and (c) versioned here: any
// layout change bumps the codec tag (as the trace slot did, claiming tag
// 2, and the tenant slot did, claiming tag 3) rather than mutating an
// existing layout in place, so mixed-version peers fail with a typed
// CodecError instead of silently misparsing.
//
// Buffer ownership: encode and decode both borrow scratch buffers from a
// sync.Pool. On the read side, a fast-path FileChunk's Data slice points
// INTO the pooled frame buffer; the Msg carries the loan and Msg.Release
// returns it. See Msg.Release for the contract.
package wire

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
)

// Codec identifies a frame-body encoding (the one-byte tag in the frame
// header).
type Codec uint8

// The wire codecs. CodecGob is the universal fallback; CodecBinary is
// fast-path binary v1; CodecBinaryTraced is binary v1 carrying a
// 16-byte trace slot ahead of the kind field; CodecBinaryTenant is
// binary v1 carrying a 4-byte tenant slot and the 16-byte trace slot
// (see below). Per the versioning rule, each slot got its own tag
// instead of mutating v1's layout in place.
const (
	CodecGob          Codec = 0
	CodecBinary       Codec = 1
	CodecBinaryTraced Codec = 2
	CodecBinaryTenant Codec = 3
)

// String implements fmt.Stringer for diagnostics.
func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	case CodecBinaryTraced:
		return "binary-traced"
	case CodecBinaryTenant:
		return "binary-tenant"
	}
	return fmt.Sprintf("codec(%d)", uint8(c))
}

// CodecError reports a frame that could not be decoded — or would not be
// accepted — under the codec its header declares: an unknown codec tag, a
// binary frame sent to a gob-only endpoint, a kind the binary codec does
// not cover, or a body whose length contradicts the kind's fixed layout.
// Match it with
//
//	var ce *wire.CodecError
//	if errors.As(err, &ce) { ... }
//
// The connection is still frame-synchronized after a CodecError (the
// whole body was consumed), but callers should treat it as a protocol
// mismatch and drop the connection.
type CodecError struct {
	// Codec is the tag the offending frame declared.
	Codec Codec
	// Kind is the message kind, when the decoder got far enough to read
	// it (zero otherwise).
	Kind Kind
	// Reason is the human-readable diagnostic.
	Reason string
}

// Error implements error.
func (e *CodecError) Error() string {
	if e.Kind != 0 {
		return fmt.Sprintf("wire: codec %v, kind %v: %s", e.Codec, e.Kind, e.Reason)
	}
	return fmt.Sprintf("wire: codec %v: %s", e.Codec, e.Reason)
}

// defaultFastPath and defaultAcceptBinary seed every NewConn from the
// build-tag default (see fastpath_on.go / fastpath_off.go). Tests and
// benchmarks flip the write-side default to measure the gob baseline.
var (
	defaultFastPath     atomic.Bool
	defaultAcceptBinary atomic.Bool
)

func init() {
	defaultFastPath.Store(buildFastPath)
	defaultAcceptBinary.Store(buildFastPath)
}

// SetDefaultFastPath sets whether connections created from now on encode
// eligible frames with the binary codec (true, the non-gobonly build
// default) or keep everything on gob (false). It returns the previous
// default. Existing connections are unaffected; read-side acceptance is
// untouched. It exists for baseline benchmarks and build-parity tests.
func SetDefaultFastPath(on bool) (prev bool) {
	return defaultFastPath.Swap(on)
}

// frame geometry.
const (
	// headerSize is the fixed frame prelude: 4-byte big-endian body
	// length followed by the 1-byte codec tag. The length excludes the
	// prelude itself.
	headerSize = 5
	// kindSize is the binary-codec kind field at the start of the body.
	kindSize = 2
	// traceSize is the fixed trace slot a CodecBinaryTraced body starts
	// with: trace ID (int64, an ids.RequestID) + span ID (uint64), both
	// big-endian. The slot precedes the kind field, so the rest of the
	// body is exactly a binary-v1 body.
	traceSize = 16
	// tenantSize is the fixed tenant slot a CodecBinaryTenant body
	// starts with: the tenant ID (int32), big-endian, ahead of the trace
	// slot.
	tenantSize = 4
	// chunkPrefixLen is everything in a binary FileChunk frame before
	// the data bytes: header + kind + offset.
	chunkPrefixLen = headerSize + kindSize + 8
	// tracedChunkPrefixLen is the same prefix with the trace slot
	// between the header and the kind field (tag 2 frames).
	tracedChunkPrefixLen = headerSize + traceSize + kindSize + 8
	// tenantChunkPrefixLen is the tag-3 prefix: tenant slot, then trace
	// slot, then kind + offset.
	tenantChunkPrefixLen = headerSize + tenantSize + traceSize + kindSize + 8
)

// bufPool recycles frame-sized scratch buffers across Write and Read.
// Entries are *[]byte so Put does not allocate a slice header.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledBuf caps the capacity returned to the pool: data-plane frames
// (≤ 256 KiB chunks) always recycle, while a rare near-MaxFrame frame is
// left to the GC instead of pinning megabytes per P.
const maxPooledBuf = 512 * 1024

// getBuf returns a pooled buffer with capacity ≥ n and length 0.
func getBuf(n int) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, 0, n)
	}
	return bp
}

// putBuf returns a buffer to the pool (oversized ones go to the GC).
func putBuf(bp *[]byte) {
	if bp == nil || cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// chunkPool recycles the FileChunk payload structs the fast-path decoder
// hands out, so a steady-state stream loop performs zero allocations per
// chunk. Msg.Release feeds it.
var chunkPool = sync.Pool{New: func() any { return new(FileChunk) }}

// readReqPool recycles the ReadFile structs ranged fast-path requests
// decode into: a striped read issues one request per segment, so the
// request decode must stay off the per-segment allocation budget the
// same way chunks do. Msg.Release feeds it. Legacy 28-byte bodies keep
// decoding to a plain ReadFile value (callers compare those payloads by
// interface equality).
var readReqPool = sync.Pool{New: func() any { return new(ReadFile) }}

// chunkFrame is the reusable scratch for a single-writev chunk write: the
// frame prefix (15 bytes untraced, 31 with the trace slot, 35 with the
// tenant + trace slots) plus a two-element net.Buffers that lets the data
// slice go to the kernel without being copied into a contiguous frame.
// bufs is rebuilt from arr on every use because Buffers.WriteTo consumes
// the slice it writes (advancing it to zero length AND zero capacity) —
// an append into the consumed slice would reallocate per call.
type chunkFrame struct {
	prefix [tenantChunkPrefixLen]byte
	arr    [2][]byte
	bufs   net.Buffers
}

var chunkFramePool = sync.Pool{New: func() any { return new(chunkFrame) }}

// WriteChunk sends one FileChunk frame. On the fast path it is the
// zero-allocation hot loop of every data stream: the 15-byte prefix and
// the caller's data slice go out as a single writev (net.Buffers), so
// each chunk costs one syscall and zero copies. data is only read, never
// retained, so the caller may reuse its buffer immediately. With the fast
// path disabled it degrades to the gob frame Write would produce.
func (c *Conn) WriteChunk(offset int64, data []byte) error {
	if !c.fastWrite.Load() {
		return c.writeGob(KindFileChunk, FileChunk{Offset: offset, Data: data})
	}
	if t := c.tenantID(); t.Valid() {
		return c.writeChunkTenant(t, trace.SpanContext{}, offset, data)
	}
	body := kindSize + 8 + len(data)
	if body > MaxFrame {
		return &FrameTooLargeError{Kind: KindFileChunk, Size: int64(body), Cap: MaxFrame, Outgoing: true}
	}
	f := chunkFramePool.Get().(*chunkFrame)
	binary.BigEndian.PutUint32(f.prefix[0:4], uint32(body))
	f.prefix[4] = byte(CodecBinary)
	binary.BigEndian.PutUint16(f.prefix[5:7], uint16(KindFileChunk))
	binary.BigEndian.PutUint64(f.prefix[7:15], uint64(offset))
	if err := c.writevChunk(f, f.prefix[:chunkPrefixLen], data); err != nil {
		return err
	}
	codecMet.Load().txBinary.Inc()
	return nil
}

// WriteChunkTraced is WriteChunk with the span context tc in the frame's
// trace slot (codec tag 2), so the serving RM's stream span and the
// client's segment span share one trace. A zero tc degrades to the
// untraced WriteChunk; the traced path keeps the zero-allocation
// single-writev contract (the trace slot lives in the pooled prefix).
func (c *Conn) WriteChunkTraced(tc trace.SpanContext, offset int64, data []byte) error {
	if !tc.Valid() {
		return c.WriteChunk(offset, data)
	}
	if !c.fastWrite.Load() {
		return c.writeGobMsg(Msg{Kind: KindFileChunk, Payload: FileChunk{Offset: offset, Data: data}, Trace: tc})
	}
	if t := c.tenantID(); t.Valid() {
		return c.writeChunkTenant(t, tc, offset, data)
	}
	body := traceSize + kindSize + 8 + len(data)
	if body > MaxFrame {
		return &FrameTooLargeError{Kind: KindFileChunk, Size: int64(body), Cap: MaxFrame, Outgoing: true}
	}
	f := chunkFramePool.Get().(*chunkFrame)
	binary.BigEndian.PutUint32(f.prefix[0:4], uint32(body))
	f.prefix[4] = byte(CodecBinaryTraced)
	binary.BigEndian.PutUint64(f.prefix[5:13], uint64(int64(tc.Trace)))
	binary.BigEndian.PutUint64(f.prefix[13:21], tc.Span)
	binary.BigEndian.PutUint16(f.prefix[21:23], uint16(KindFileChunk))
	binary.BigEndian.PutUint64(f.prefix[23:31], uint64(offset))
	if err := c.writevChunk(f, f.prefix[:tracedChunkPrefixLen], data); err != nil {
		return err
	}
	codecMet.Load().txTraced.Inc()
	return nil
}

// WriteReadReq sends one (possibly ranged) ReadFile request. It is the
// per-segment control frame of a striped read, so the fast path keeps it
// at zero allocations: the payload rides a pooled *ReadFile, and boxing a
// pointer into the payload interface does not allocate the way boxing the
// 5-field struct value would. A zero tc degrades to the untraced frame;
// with the fast path disabled it degrades to the gob frame Write would
// produce (gob sees the plain value — pointers need no registration).
func (c *Conn) WriteReadReq(tc trace.SpanContext, req ReadFile) error {
	if !c.fastWrite.Load() {
		if tc.Valid() {
			return c.writeGobMsg(Msg{Kind: KindReadFile, Payload: req, Trace: tc})
		}
		return c.writeGob(KindReadFile, req)
	}
	rq := readReqPool.Get().(*ReadFile)
	*rq = req
	var err error
	if tc.Valid() {
		err = c.WriteTraced(tc, KindReadFile, rq)
	} else {
		err = c.Write(KindReadFile, rq)
	}
	*rq = ReadFile{}
	readReqPool.Put(rq)
	return err
}

// writeChunkTenant sends one FileChunk frame under codec tag 3: the
// tenant slot, the trace slot (zero when untraced), then the binary-v1
// chunk body. Same pooled single-writev discipline as the untagged
// paths, so a tenant-stamped connection's data plane stays at zero
// allocations per chunk.
func (c *Conn) writeChunkTenant(t ids.TenantID, tc trace.SpanContext, offset int64, data []byte) error {
	body := tenantSize + traceSize + kindSize + 8 + len(data)
	if body > MaxFrame {
		return &FrameTooLargeError{Kind: KindFileChunk, Size: int64(body), Cap: MaxFrame, Outgoing: true}
	}
	f := chunkFramePool.Get().(*chunkFrame)
	binary.BigEndian.PutUint32(f.prefix[0:4], uint32(body))
	f.prefix[4] = byte(CodecBinaryTenant)
	binary.BigEndian.PutUint32(f.prefix[5:9], uint32(int32(t)))
	binary.BigEndian.PutUint64(f.prefix[9:17], uint64(int64(tc.Trace)))
	binary.BigEndian.PutUint64(f.prefix[17:25], tc.Span)
	binary.BigEndian.PutUint16(f.prefix[25:27], uint16(KindFileChunk))
	binary.BigEndian.PutUint64(f.prefix[27:35], uint64(offset))
	if err := c.writevChunk(f, f.prefix[:tenantChunkPrefixLen], data); err != nil {
		return err
	}
	codecMet.Load().txTenant.Inc()
	return nil
}

// writevChunk pushes prefix+data as a single writev under the write lock
// and returns f to the pool.
func (c *Conn) writevChunk(f *chunkFrame, prefix, data []byte) error {
	f.arr[0] = prefix
	f.arr[1] = data
	f.bufs = net.Buffers(f.arr[:])
	c.wmu.Lock()
	c.armWriteDeadlineLocked()
	_, err := f.bufs.WriteTo(c.rw)
	c.wmu.Unlock()
	// Drop the data references before pooling so the pool does not pin the
	// caller's buffer (WriteTo consumes bufs but arr keeps the originals).
	f.arr[0], f.arr[1] = nil, nil
	f.bufs = nil
	chunkFramePool.Put(f)
	if err != nil {
		return fmt.Errorf("wire: writing %v frame: %w", KindFileChunk, err)
	}
	return nil
}

// appendBinary appends the binary-v1 body (kind + payload) for one
// eligible (kind, payload) pair to b. It reports false when the pair is
// not fast-path encodable, leaving b's length unchanged.
func appendBinary(b []byte, kind Kind, payload any) ([]byte, bool) {
	start := len(b)
	b = binary.BigEndian.AppendUint16(b, uint16(kind))
	switch kind {
	case KindFileEnd:
		p, ok := payload.(FileEnd)
		if !ok {
			return b[:start], false
		}
		b = binary.BigEndian.AppendUint64(b, uint64(p.Size))
		b = binary.BigEndian.AppendUint64(b, p.Checksum)
	case KindReadFile:
		p, ok := payload.(ReadFile)
		if !ok {
			// WriteReadReq sends a pooled pointer so the interface
			// conversion never allocates.
			pp, pok := payload.(*ReadFile)
			if !pok {
				return b[:start], false
			}
			p = *pp
		}
		b = binary.BigEndian.AppendUint32(b, uint32(int32(p.File)))
		b = binary.BigEndian.AppendUint64(b, uint64(int64(p.ChunkSize)))
		b = binary.BigEndian.AppendUint64(b, uint64(p.Offset))
		b = binary.BigEndian.AppendUint64(b, uint64(p.Request))
		// The length field is appended only for ranged reads, keeping
		// whole-file request frames byte-identical to the pre-ranged
		// layout (see the layout comment at the top of this file).
		if p.Length > 0 {
			b = binary.BigEndian.AppendUint64(b, uint64(p.Length))
		}
	case KindWriteFile:
		p, ok := payload.(WriteFile)
		if !ok {
			return b[:start], false
		}
		b = binary.BigEndian.AppendUint32(b, uint32(int32(p.File)))
		b = binary.BigEndian.AppendUint64(b, uint64(p.SizeBytes))
		b = binary.BigEndian.AppendUint64(b, uint64(p.Replication))
	case KindAck:
		if _, ok := payload.(Ack); !ok {
			return b[:start], false
		}
	case KindError:
		p, ok := payload.(Error)
		if !ok {
			return b[:start], false
		}
		b = append(b, p.Text...)
	case KindHeartbeat:
		p, ok := payload.(Heartbeat)
		if !ok {
			return b[:start], false
		}
		b = binary.BigEndian.AppendUint32(b, uint32(int32(p.RM)))
	case KindKeepalive:
		p, ok := payload.(Keepalive)
		if !ok {
			return b[:start], false
		}
		b = binary.BigEndian.AppendUint64(b, uint64(p.Request))
	default:
		return b[:start], false
	}
	return b, true
}

// decodeBinary parses a binary-v1 body. bp is the pooled buffer backing
// body; when the decoded payload borrows from it (FileChunk keeps its
// Data in place instead of copying), the returned Msg carries the loan
// and retained is true — the caller must NOT putBuf it, Msg.Release will.
// Hostile input (short bodies, wrong fixed lengths, kinds the codec does
// not cover) yields a typed *CodecError, never a panic.
func decodeBinary(body []byte, bp *[]byte) (msg Msg, retained bool, err error) {
	if len(body) < kindSize {
		return Msg{}, false, &CodecError{Codec: CodecBinary, Reason: "body shorter than kind field"}
	}
	kind := Kind(binary.BigEndian.Uint16(body[:kindSize]))
	p := body[kindSize:]
	badLen := func() (Msg, bool, error) {
		return Msg{}, false, &CodecError{Codec: CodecBinary, Kind: kind,
			Reason: fmt.Sprintf("payload length %d contradicts fixed layout", len(p))}
	}
	switch kind {
	case KindFileChunk:
		if len(p) < 8 {
			return badLen()
		}
		ch := chunkPool.Get().(*FileChunk)
		ch.Offset = int64(binary.BigEndian.Uint64(p[:8]))
		ch.Data = p[8:]
		return Msg{Kind: kind, Payload: ch, pooled: bp, chunk: ch}, true, nil
	case KindFileEnd:
		if len(p) != 16 {
			return badLen()
		}
		return Msg{Kind: kind, Payload: FileEnd{
			Size:     int64(binary.BigEndian.Uint64(p[:8])),
			Checksum: binary.BigEndian.Uint64(p[8:16]),
		}}, false, nil
	case KindReadFile:
		switch len(p) {
		case 28: // legacy whole-file layout: decode to a plain value
			return Msg{Kind: kind, Payload: ReadFile{
				File:      ids.FileID(int32(binary.BigEndian.Uint32(p[:4]))),
				ChunkSize: int(int64(binary.BigEndian.Uint64(p[4:12]))),
				Offset:    int64(binary.BigEndian.Uint64(p[12:20])),
				Request:   ids.RequestID(int64(binary.BigEndian.Uint64(p[20:28]))),
			}}, false, nil
		case 36: // ranged layout with the trailing length field
			rq := readReqPool.Get().(*ReadFile)
			rq.File = ids.FileID(int32(binary.BigEndian.Uint32(p[:4])))
			rq.ChunkSize = int(int64(binary.BigEndian.Uint64(p[4:12])))
			rq.Offset = int64(binary.BigEndian.Uint64(p[12:20]))
			rq.Request = ids.RequestID(int64(binary.BigEndian.Uint64(p[20:28])))
			rq.Length = int64(binary.BigEndian.Uint64(p[28:36]))
			return Msg{Kind: kind, Payload: rq, rreq: rq}, false, nil
		}
		return badLen()
	case KindWriteFile:
		if len(p) != 20 {
			return badLen()
		}
		return Msg{Kind: kind, Payload: WriteFile{
			File:        ids.FileID(int32(binary.BigEndian.Uint32(p[:4]))),
			SizeBytes:   int64(binary.BigEndian.Uint64(p[4:12])),
			Replication: ids.ReplicationID(int64(binary.BigEndian.Uint64(p[12:20]))),
		}}, false, nil
	case KindAck:
		if len(p) != 0 {
			return badLen()
		}
		return Msg{Kind: kind, Payload: Ack{}}, false, nil
	case KindError:
		return Msg{Kind: kind, Payload: Error{Text: string(p)}}, false, nil
	case KindHeartbeat:
		if len(p) != 4 {
			return badLen()
		}
		return Msg{Kind: kind, Payload: Heartbeat{RM: ids.RMID(int32(binary.BigEndian.Uint32(p[:4])))}}, false, nil
	case KindKeepalive:
		if len(p) != 8 {
			return badLen()
		}
		return Msg{Kind: kind, Payload: Keepalive{Request: ids.RequestID(int64(binary.BigEndian.Uint64(p[:8])))}}, false, nil
	}
	return Msg{}, false, &CodecError{Codec: CodecBinary, Kind: kind, Reason: "kind not covered by the binary codec"}
}
