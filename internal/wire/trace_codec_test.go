//go:build !gobonly

package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"

	"dfsqos/internal/ids"
	"dfsqos/internal/trace"
)

var testTC = trace.SpanContext{Trace: ids.RequestID(0x1122334455), Span: 0x99}

// TestWriteTracedBinaryRoundTrip drives every fast-path-eligible kind
// through the traced binary codec (tag 2) and asserts both the payload
// and the span context survive.
func TestWriteTracedBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		kind    Kind
		payload any
	}{
		{KindFileEnd, FileEnd{Size: 4096, Checksum: 0xdeadbeef}},
		{KindReadFile, ReadFile{File: 7, ChunkSize: 128 << 10, Offset: 8192, Request: 42}},
		{KindWriteFile, WriteFile{File: 3, SizeBytes: 1 << 20, Replication: 9}},
		{KindAck, Ack{}},
		{KindError, Error{Text: "boom"}},
		{KindHeartbeat, Heartbeat{RM: 5}},
		{KindKeepalive, Keepalive{Request: 77}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			var buf bytes.Buffer
			c := NewConn(&buf)
			if err := c.WriteTraced(testTC, tc.kind, tc.payload); err != nil {
				t.Fatal(err)
			}
			if got := Codec(buf.Bytes()[4]); got != CodecBinaryTraced {
				t.Fatalf("frame codec = %v, want binary-traced", got)
			}
			msg, err := c.Read()
			if err != nil {
				t.Fatal(err)
			}
			if msg.Trace != testTC {
				t.Fatalf("trace = %+v, want %+v", msg.Trace, testTC)
			}
			if msg.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", msg.Kind, tc.kind)
			}
			if msg.Payload != tc.payload {
				t.Fatalf("payload = %#v, want %#v", msg.Payload, tc.payload)
			}
		})
	}
}

func TestWriteChunkTracedRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	data := []byte("traced chunk payload")
	if err := c.WriteChunkTraced(testTC, 1024, data); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinaryTraced {
		t.Fatalf("frame codec = %v, want binary-traced", got)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace != testTC {
		t.Fatalf("trace = %+v, want %+v", msg.Trace, testTC)
	}
	ch, ok := msg.Chunk()
	if !ok || ch.Offset != 1024 || !bytes.Equal(ch.Data, data) {
		t.Fatalf("chunk mangled: %+v", msg.Payload)
	}
	msg.Release()
	if msg.Payload != nil {
		t.Fatal("Release did not nil the payload")
	}
}

// TestWriteTracedGobEnvelope covers the kinds the binary codec does not:
// the span context rides the gob envelope's Trace field.
func TestWriteTracedGobEnvelope(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteTraced(testTC, KindLookup, FileRef{File: 12}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecGob {
		t.Fatalf("frame codec = %v, want gob", got)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace != testTC {
		t.Fatalf("trace = %+v, want %+v", msg.Trace, testTC)
	}
	if ref, ok := msg.Payload.(FileRef); !ok || ref.File != 12 {
		t.Fatalf("payload mangled: %#v", msg.Payload)
	}
}

// TestWriteTracedGobPinnedConn pins the writer to gob: traced fast-path
// kinds must still carry their span context (via the envelope).
func TestWriteTracedGobPinnedConn(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	c.SetFastPath(false)
	if err := c.WriteTraced(testTC, KindFileEnd, FileEnd{Size: 1, Checksum: 2}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChunkTraced(testTC, 64, []byte("gob chunk")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := Codec(buf.Bytes()[4]); got != CodecGob {
			t.Fatalf("frame %d codec = %v, want gob", i, got)
		}
		msg, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		if msg.Trace != testTC {
			t.Fatalf("frame %d trace = %+v, want %+v", i, msg.Trace, testTC)
		}
		msg.Release()
	}
}

func TestWriteTracedZeroContextStaysUntraced(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteTraced(trace.SpanContext{}, KindFileEnd, FileEnd{Size: 1}); err != nil {
		t.Fatal(err)
	}
	if got := Codec(buf.Bytes()[4]); got != CodecBinary {
		t.Fatalf("zero-context frame codec = %v, want plain binary", got)
	}
	msg, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Trace.Valid() {
		t.Fatalf("zero-context frame decoded with trace %+v", msg.Trace)
	}
}

// TestMixedTracedUntracedInterleave interleaves all three codecs on one
// connection: plain binary, traced binary, gob, and traced gob frames
// must each decode independently.
func TestMixedTracedUntracedInterleave(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.Write(KindFileEnd, FileEnd{Size: 1}); err != nil { // binary
		t.Fatal(err)
	}
	if err := c.WriteTraced(testTC, KindFileEnd, FileEnd{Size: 2}); err != nil { // traced binary
		t.Fatal(err)
	}
	if err := c.Write(KindLookup, FileRef{File: 3}); err != nil { // gob
		t.Fatal(err)
	}
	if err := c.WriteTraced(testTC, KindLookup, FileRef{File: 4}); err != nil { // traced gob
		t.Fatal(err)
	}
	if err := c.WriteChunkTraced(testTC, 5, []byte("x")); err != nil { // traced chunk
		t.Fatal(err)
	}
	wantTraced := []bool{false, true, false, true, true}
	for i, want := range wantTraced {
		msg, err := c.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := msg.Trace.Valid(); got != want {
			t.Fatalf("frame %d traced = %v, want %v", i, got, want)
		}
		msg.Release()
	}
}

func TestCallContextPropagatesSpanContext(t *testing.T) {
	cli, srv := net.Pipe()
	defer cli.Close()
	defer srv.Close()
	got := make(chan trace.SpanContext, 1)
	go func() {
		sc := NewConn(srv)
		msg, err := sc.Read()
		if err != nil {
			return
		}
		got <- msg.Trace
		sc.Write(KindAck, Ack{})
	}()
	ctx := trace.NewContext(context.Background(), testTC)
	cc := NewConn(cli)
	if _, err := cc.CallContext(ctx, KindKeepalive, Keepalive{Request: 1}); err != nil {
		t.Fatal(err)
	}
	if tc := <-got; tc != testTC {
		t.Fatalf("server saw trace %+v, want %+v", tc, testTC)
	}
}

func TestTracedFrameShortTraceSlotRejected(t *testing.T) {
	var buf bytes.Buffer
	body := []byte{1, 2, 3} // shorter than the 16-byte trace slot
	writeRawFrame(&buf, CodecBinaryTraced, body)
	_, err := NewConn(&buf).Read()
	var ce *CodecError
	if !errors.As(err, &ce) || ce.Codec != CodecBinaryTraced {
		t.Fatalf("short trace slot: err = %v, want CodecError{binary-traced}", err)
	}
}

func TestTracedFrameRejectedWhenBinaryNotAccepted(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteTraced(testTC, KindFileEnd, FileEnd{Size: 1}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(&buf)
	r.SetAcceptBinary(false)
	_, err := r.Read()
	var ce *CodecError
	if !errors.As(err, &ce) || ce.Codec != CodecBinaryTraced {
		t.Fatalf("err = %v, want CodecError{binary-traced}", err)
	}
}

// TestTracedStatsCount verifies the traced frames land in the
// binary-traced counter bucket, not the plain binary one.
func TestTracedStatsCount(t *testing.T) {
	tx0, rx0 := CodecTracedStats()
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteTraced(testTC, KindFileEnd, FileEnd{}); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteChunkTraced(testTC, 0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		msg, err := c.Read()
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
	}
	tx1, rx1 := CodecTracedStats()
	if tx1-tx0 != 2 || rx1-rx0 != 2 {
		t.Fatalf("traced frame counters moved tx=%d rx=%d, want 2/2", tx1-tx0, rx1-rx0)
	}
}

// TestTracedChunkZeroAllocs is the unit-level guard behind the bench
// gate: steady-state traced chunk encode and decode must not allocate.
func TestTracedChunkZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; the alloc gate runs in the bench job")
	}
	data := make([]byte, 32<<10)
	w := NewConn(discardRW{})
	if avg := testing.AllocsPerRun(200, func() {
		if err := w.WriteChunkTraced(testTC, 0, data); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("WriteChunkTraced allocs/op = %v, want 0", avg)
	}

	var frame bytes.Buffer
	NewConn(&frame).WriteChunkTraced(testTC, 0, data)
	l := &loopRW{frame: frame.Bytes()}
	r := NewConn(l)
	if avg := testing.AllocsPerRun(200, func() {
		msg, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		msg.Release()
	}); avg != 0 {
		t.Fatalf("traced chunk Read allocs/op = %v, want 0", avg)
	}
}

// TestTracedPrefixLayout pins the tag-2 chunk prefix byte-for-byte so a
// layout drift fails loudly rather than via subtle misparses.
func TestTracedPrefixLayout(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	if err := c.WriteChunkTraced(testTC, 0x0102030405060708, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != tracedChunkPrefixLen+1 {
		t.Fatalf("frame len = %d, want %d", len(b), tracedChunkPrefixLen+1)
	}
	if n := binary.BigEndian.Uint32(b[0:4]); int(n) != traceSize+kindSize+8+1 {
		t.Errorf("declared body len = %d", n)
	}
	if b[4] != byte(CodecBinaryTraced) {
		t.Errorf("codec tag = %d", b[4])
	}
	if got := int64(binary.BigEndian.Uint64(b[5:13])); got != int64(testTC.Trace) {
		t.Errorf("trace id slot = %#x", got)
	}
	if got := binary.BigEndian.Uint64(b[13:21]); got != testTC.Span {
		t.Errorf("span id slot = %#x", got)
	}
	if got := Kind(binary.BigEndian.Uint16(b[21:23])); got != KindFileChunk {
		t.Errorf("kind slot = %v", got)
	}
	if got := binary.BigEndian.Uint64(b[23:31]); got != 0x0102030405060708 {
		t.Errorf("offset slot = %#x", got)
	}
	if b[31] != 0xAA {
		t.Errorf("data byte = %#x", b[31])
	}
}
