package wire

import (
	"bytes"
	"io"
	"net"
	"testing"

	"dfsqos/internal/trace"
)

// discardRW is a ReadWriter that swallows writes (encode benchmarks).
type discardRW struct{}

func (discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (discardRW) Read(p []byte) (int, error)  { return 0, io.EOF }

// loopRW replays one pre-encoded frame forever (decode benchmarks).
type loopRW struct {
	frame []byte
	off   int
}

func (l *loopRW) Read(p []byte) (int, error) {
	if l.off == len(l.frame) {
		l.off = 0
	}
	n := copy(p, l.frame[l.off:])
	l.off += n
	return n, nil
}

func (l *loopRW) Write(p []byte) (int, error) { return len(p), nil }

// benchChunk is the data-plane payload size the RM stream server uses.
const benchChunk = 128 * 1024

func chunkData() []byte {
	data := make([]byte, benchChunk)
	for i := range data {
		data[i] = byte(i * 131)
	}
	return data
}

// BenchmarkEncodeChunk measures the cost of putting one FileChunk frame on
// the wire: the fast path must be 0 allocs/op (the bench gate pins this),
// the gob sub-benchmark is the seed baseline it replaced.
func BenchmarkEncodeChunk(b *testing.B) {
	data := chunkData()
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewConn(discardRW{})
			c.SetFastPath(mode.fast)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteChunk(int64(i)*benchChunk, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeChunk measures turning frame bytes back into a FileChunk.
// The fast path borrows the pooled frame buffer (0 allocs/op with Release);
// gob re-decodes through reflection each time.
func BenchmarkDecodeChunk(b *testing.B) {
	data := chunkData()
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var buf bytes.Buffer
			w := NewConn(&buf)
			w.SetFastPath(mode.fast)
			if err := w.WriteChunk(0, data); err != nil {
				b.Fatal(err)
			}
			r := NewConn(&loopRW{frame: buf.Bytes()})
			r.SetAcceptBinary(true)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg, err := r.Read()
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}

// BenchmarkEncodeChunkTraced is BenchmarkEncodeChunk with the 16-byte
// trace slot on every frame (codec tag 2). The fast sub-benchmark is
// gated at 0 allocs/op like its untraced sibling: tracing must not put
// allocations back on the data plane.
func BenchmarkEncodeChunkTraced(b *testing.B) {
	data := chunkData()
	tc := trace.SpanContext{Trace: 42, Span: 7}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewConn(discardRW{})
			c.SetFastPath(mode.fast)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteChunkTraced(tc, int64(i)*benchChunk, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeChunkTraced decodes traced chunk frames; the fast path
// must stay 0 allocs/op (bench gate).
func BenchmarkDecodeChunkTraced(b *testing.B) {
	data := chunkData()
	tc := trace.SpanContext{Trace: 42, Span: 7}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var buf bytes.Buffer
			w := NewConn(&buf)
			w.SetFastPath(mode.fast)
			if err := w.WriteChunkTraced(tc, 0, data); err != nil {
				b.Fatal(err)
			}
			r := NewConn(&loopRW{frame: buf.Bytes()})
			r.SetAcceptBinary(true)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg, err := r.Read()
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}

// BenchmarkEncodeChunkTenant is BenchmarkEncodeChunk on a
// tenant-stamped connection: every frame carries the 4-byte tenant slot
// plus the 16-byte trace slot (codec tag 3). The fast sub-benchmark is
// gated at 0 allocs/op like its untagged siblings: tenancy must not put
// allocations back on the data plane.
func BenchmarkEncodeChunkTenant(b *testing.B) {
	data := chunkData()
	tc := trace.SpanContext{Trace: 42, Span: 7}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			c := NewConn(discardRW{})
			c.SetFastPath(mode.fast)
			c.SetTenant(3)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteChunkTraced(tc, int64(i)*benchChunk, data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeChunkTenant decodes tenant-tagged chunk frames; the
// fast path must stay 0 allocs/op (bench gate).
func BenchmarkDecodeChunkTenant(b *testing.B) {
	data := chunkData()
	tc := trace.SpanContext{Trace: 42, Span: 7}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var buf bytes.Buffer
			w := NewConn(&buf)
			w.SetFastPath(mode.fast)
			w.SetTenant(3)
			if err := w.WriteChunkTraced(tc, 0, data); err != nil {
				b.Fatal(err)
			}
			r := NewConn(&loopRW{frame: buf.Bytes()})
			r.SetAcceptBinary(true)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg, err := r.Read()
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}

// BenchmarkRoundTrip measures encode + decode through an in-memory stream,
// the full per-frame codec cost without network effects.
func BenchmarkRoundTrip(b *testing.B) {
	data := chunkData()
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var buf bytes.Buffer
			c := NewConn(&buf)
			c.SetFastPath(mode.fast)
			c.SetAcceptBinary(true)
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteChunk(int64(i)*benchChunk, data); err != nil {
					b.Fatal(err)
				}
				msg, err := c.Read()
				if err != nil {
					b.Fatal(err)
				}
				msg.Release()
			}
		})
	}
}

// BenchmarkStreamThroughput measures a producer/consumer chunk stream over
// an in-process pipe: writer goroutine framing chunks, reader consuming
// and checksumming them — the shape of the RM data plane minus the kernel.
func BenchmarkStreamThroughput(b *testing.B) {
	data := chunkData()
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fast", true}, {"gob", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cw, cr := net.Pipe()
			w := NewConn(cw)
			w.SetFastPath(mode.fast)
			r := NewConn(cr)
			r.SetAcceptBinary(true)
			done := make(chan error, 1)
			go func() {
				for i := 0; i < b.N; i++ {
					if err := w.WriteChunk(int64(i)*benchChunk, data); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			b.SetBytes(benchChunk)
			b.ReportAllocs()
			b.ResetTimer()
			sum := ChecksumBasis
			for i := 0; i < b.N; i++ {
				msg, err := r.Read()
				if err != nil {
					b.Fatal(err)
				}
				if ch, ok := msg.Chunk(); ok {
					sum = ChecksumUpdate(sum, ch.Data[:64]) // sample, not full hash
				}
				msg.Release()
			}
			b.StopTimer()
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			_ = sum
			cw.Close()
			cr.Close()
		})
	}
}

// benchSink defeats dead-code elimination: without a package-level store
// the compiler inlines checksumScalar and deletes the whole hash loop,
// reporting a fantasy number.
var benchSink uint64

// BenchmarkChecksum pins the unrolled FNV-1a throughput against the scalar
// reference. Both are bound by the same loop-carried multiply chain, so
// the honest expectation is parity-or-better, not a multiple.
func BenchmarkChecksum(b *testing.B) {
	data := chunkData()
	b.Run("unrolled", func(b *testing.B) {
		b.SetBytes(benchChunk)
		sum := ChecksumBasis
		for i := 0; i < b.N; i++ {
			sum = ChecksumUpdate(sum, data)
		}
		benchSink = sum
	})
	b.Run("scalar", func(b *testing.B) {
		b.SetBytes(benchChunk)
		sum := ChecksumBasis
		for i := 0; i < b.N; i++ {
			sum = checksumScalar(sum, data)
		}
		benchSink = sum
	})
}
