package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
)

// pipeConn builds a bidirectional in-memory connection pair.
func pipeConn() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestRoundTripAllPayloads(t *testing.T) {
	payloads := []struct {
		kind Kind
		body any
	}{
		{KindRegisterRM, RegisterRM{
			Info:  ecnp.RMInfo{ID: 3, Capacity: units.Mbps(18), StorageBytes: 16 * units.GB, Addr: "127.0.0.1:9000"},
			Files: []ids.FileID{1, 2, 3},
		}},
		{KindLookup, FileRef{File: 42}},
		{KindRMList, RMList{RMs: []ids.RMID{1, 2, 3}}},
		{KindRMInfoList, RMInfoList{Infos: []ecnp.RMInfo{{ID: 1, Capacity: units.Mbps(128)}}}},
		{KindCount, Count{N: 3}},
		{KindCFP, ecnp.CFP{Request: 9, File: 1, Bitrate: units.Mbps(2), DurationSec: 300}},
		{KindOpen, ecnp.OpenRequest{Request: 9, File: 1, Bitrate: units.Mbps(2), DurationSec: 300, Firm: true}},
		{KindOpenResult, ecnp.OpenResult{OK: false, Reason: "insufficient bandwidth"}},
		{KindClose, CloseReq{Request: 9}},
		{KindOfferReplica, ecnp.ReplicaOffer{Replication: 7, File: 1, SizeBytes: units.MB, Bitrate: units.Mbps(2), DurationSec: 4, Rate: units.Mbps(1.8), Source: 2}},
		{KindOfferReply, OfferReply{Accepted: true}},
		{KindFinishReplica, FinishReplica{Replication: 7, Committed: true}},
		{KindReadFile, ReadFile{File: 1, ChunkSize: 65536}},
		{KindFileChunk, FileChunk{Offset: 128, Data: []byte{1, 2, 3}}},
		{KindFileEnd, FileEnd{Size: 131, Checksum: 0xdeadbeef}},
		{KindAck, Ack{}},
	}
	client, server := pipeConn()
	done := make(chan error, 1)
	go func() {
		for range payloads {
			msg, err := server.Read()
			if err != nil {
				done <- err
				return
			}
			err = server.Write(msg.Kind, msg.Payload)
			msg.Release() // WriteChunk never retains the data, so release after echo
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for _, p := range payloads {
		reply, err := client.Call(p.kind, p.body)
		if err != nil {
			t.Fatalf("%v: %v", p.kind, err)
		}
		if reply.Kind != p.kind {
			t.Fatalf("echoed kind %v, want %v", reply.Kind, p.kind)
		}
		got := reply.Payload
		if fc, ok := reply.Chunk(); ok {
			got = *fc // fast-path chunks arrive as pooled pointers
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", p.body) {
			t.Fatalf("%v payload mangled:\n got %+v\nwant %+v", p.kind, got, p.body)
		}
		reply.Release()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestBidRoundTripCarriesQoSFields pins the bid frame's full field set —
// in particular the oversubscription-aware Assured/Ceil pair — through the
// gob codec, so an RM's advertised ceiling survives the trip to the
// requester's admission logic.
func TestBidRoundTripCarriesQoSFields(t *testing.T) {
	bid := selection.Bid{
		RM:         7,
		Rem:        -units.Mbps(2), // negative: soft over-allocation
		Trend:      1234.5,
		OccBias:    0.75,
		Req:        units.Mbps(2),
		HasReplica: true,
		Assured:    units.Mbps(3),
		Ceil:       units.Mbps(9),
	}
	client, server := pipeConn()
	go func() {
		msg, err := server.Read()
		if err != nil {
			return
		}
		server.Write(msg.Kind, msg.Payload)
		msg.Release()
	}()
	reply, err := client.Call(KindBid, bid)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := reply.Payload.(selection.Bid)
	if !ok {
		t.Fatalf("payload type %T, want selection.Bid", reply.Payload)
	}
	if got != bid {
		t.Fatalf("bid mangled:\n got %+v\nwant %+v", got, bid)
	}
	reply.Release()
}

func TestCallSurfacesRemoteError(t *testing.T) {
	client, server := pipeConn()
	go func() {
		server.Read()
		server.WriteError(errors.New("boom"))
	}()
	_, err := client.Call(KindLookup, FileRef{File: 1})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want remote boom", err)
	}
}

func TestReadEOFOnClose(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(a)
	b.Close()
	if _, err := conn.Read(); err == nil {
		t.Fatal("Read on closed pipe succeeded")
	}
}

func TestOversizeFrameRefused(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(&buf)
	big := FileChunk{Data: make([]byte, MaxFrame+1)}
	if err := c.Write(KindFileChunk, big); err == nil {
		t.Fatal("oversize write accepted")
	}
}

func TestOversizeIncomingFrameRefused(t *testing.T) {
	var buf bytes.Buffer
	// Forge a header claiming a gigantic frame (length + gob codec tag).
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0})
	c := NewConn(&buf)
	if _, err := c.Read(); err == nil {
		t.Fatal("oversize incoming frame accepted")
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 4, 0}) // 4-byte gob body...
	buf.Write([]byte{1, 2, 3, 4})    // ...of garbage
	c := NewConn(&buf)
	if _, err := c.Read(); err == nil {
		t.Fatal("garbage frame decoded")
	}
}

func TestTruncatedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 1, 0, 0}) // claims 256 gob bytes, provides 2
	buf.Write([]byte{1, 2})
	c := NewConn(&buf)
	if _, err := c.Read(); err == nil {
		t.Fatal("truncated frame decoded")
	}
}

func TestFramesAreIndependent(t *testing.T) {
	// Two messages written through different Conn instances decode from a
	// single stream: no shared gob state.
	var buf bytes.Buffer
	NewConn(&buf).Write(KindAck, Ack{})
	NewConn(&buf).Write(KindCount, Count{N: 7})
	r := NewConn(&buf)
	m1, err := r.Read()
	if err != nil || m1.Kind != KindAck {
		t.Fatalf("first frame: %v %v", m1.Kind, err)
	}
	m2, err := r.Read()
	if err != nil || m2.Kind != KindCount || m2.Payload.(Count).N != 7 {
		t.Fatalf("second frame: %+v %v", m2, err)
	}
}

func TestKindString(t *testing.T) {
	if KindCFP.String() != "CFP" {
		t.Errorf("KindCFP renders %q", KindCFP.String())
	}
	if Kind(999).String() != "Kind(999)" {
		t.Errorf("unknown kind renders %q", Kind(999).String())
	}
}

func TestLargeChunkRoundTrip(t *testing.T) {
	client, server := pipeConn()
	data := make([]byte, 256*1024)
	for i := range data {
		data[i] = byte(i)
	}
	go func() {
		msg, _ := server.Read()
		server.Write(msg.Kind, msg.Payload)
		msg.Release()
	}()
	reply, err := client.Call(KindFileChunk, FileChunk{Offset: 0, Data: data})
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := reply.Chunk()
	if !ok {
		t.Fatalf("payload is %T, not a chunk", reply.Payload)
	}
	if !bytes.Equal(fc.Data, data) {
		t.Fatal("large chunk mangled")
	}
	reply.Release()
}

func TestConcurrentWriters(t *testing.T) {
	a, b := net.Pipe()
	w := NewConn(a)
	r := NewConn(b)
	const n = 50
	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func() {
			for i := 0; i < n; i++ {
				if err := w.Write(KindCount, Count{N: i}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 2*n; i++ {
		if _, err := r.Read(); err != nil && err != io.EOF {
			t.Fatal(err)
		}
	}
	for g := 0; g < 2; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrameTooLargeErrorMatchable(t *testing.T) {
	// Outgoing: an encode past MaxFrame surfaces a typed error carrying
	// the kind and both sizes, classifiable with errors.As.
	var buf bytes.Buffer
	c := NewConn(&buf)
	err := c.Write(KindFileChunk, FileChunk{Data: make([]byte, MaxFrame+1)})
	var fe *FrameTooLargeError
	if !errors.As(err, &fe) {
		t.Fatalf("outgoing cap violation not a FrameTooLargeError: %v", err)
	}
	if !fe.Outgoing || fe.Kind != KindFileChunk || fe.Cap != MaxFrame || fe.Size <= MaxFrame {
		t.Fatalf("outgoing violation misreported: %+v", fe)
	}
	if !strings.Contains(fe.Error(), "exceeds cap") {
		t.Fatalf("unhelpful message: %q", fe.Error())
	}

	// Incoming: a forged header past the cap is rejected before any body
	// bytes are read, with Outgoing=false and no Kind (never decoded).
	var in bytes.Buffer
	in.Write([]byte{0xff, 0xff, 0xff, 0xff, 0})
	_, err = NewConn(&in).Read()
	fe = nil
	if !errors.As(err, &fe) {
		t.Fatalf("incoming cap violation not a FrameTooLargeError: %v", err)
	}
	if fe.Outgoing || fe.Kind != 0 || fe.Cap != MaxFrame {
		t.Fatalf("incoming violation misreported: %+v", fe)
	}
}

func TestWriteTornLeavesUnreadableStream(t *testing.T) {
	// A torn frame (full-length header, half the body) must not decode:
	// the reader blocks on the missing bytes and surfaces an error once
	// the stream ends — the shape of a peer crashing mid-write.
	var buf bytes.Buffer
	w := NewConn(&buf)
	if err := w.WriteTorn(KindCount, Count{N: 42}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewConn(&buf).Read(); err == nil {
		t.Fatal("torn frame decoded cleanly")
	}
}

func TestChecksumUpdateMatchesSplitInput(t *testing.T) {
	// The running FNV-1a state must be order-and-split invariant: hashing
	// a buffer in one call equals hashing it in arbitrary segments. The
	// failover path depends on this to verify a whole-file checksum
	// accumulated across stream segments served by different RMs.
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	whole := ChecksumUpdate(ChecksumBasis, data)
	split := ChecksumBasis
	for _, cut := range [][2]int{{0, 1}, {1, 7}, {7, 512}, {512, 1024}} {
		split = ChecksumUpdate(split, data[cut[0]:cut[1]])
	}
	if whole != split {
		t.Fatalf("split checksum %x != whole %x", split, whole)
	}
	if whole == ChecksumBasis {
		t.Fatal("checksum did not absorb input")
	}
}
