# Build/test entry points. `make tier1` is the acceptance gate every PR
# must keep green; `make race` exercises the concurrent paths (transport
# pool, CFP fan-out, live servers, telemetry scrapes) under the race
# detector; `make cover` enforces the per-package coverage floor on the
# observability packages.

GO ?= go

.PHONY: tier1 build test vet race cover fmt-check all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/transport/... ./internal/live/... ./internal/dfsc/... ./internal/telemetry/... ./internal/monitor/...

# cover writes one profile per gated package plus a merged coverage.out
# for the CI artifact, then enforces the floor (60%) via the gate script.
cover:
	mkdir -p coverage
	$(GO) test -coverprofile=coverage/telemetry.out ./internal/telemetry/
	$(GO) test -coverprofile=coverage/monitor.out ./internal/monitor/
	$(GO) test -coverprofile=coverage/all.out -coverpkg=./... ./...
	./scripts/cover_gate.sh 60 coverage/telemetry.out coverage/monitor.out

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
