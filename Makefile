# Build/test entry points. `make tier1` is the acceptance gate every PR
# must keep green; `make race` exercises the concurrent paths (transport
# pool, CFP fan-out, live servers, telemetry scrapes) under the race
# detector; `make cover` enforces the per-package coverage floor on the
# observability packages; `make chaos` replays the deterministic
# fault-injection drills (scripted kill/error/torn-frame incidents over
# real TCP) plus the crash/liveness suites they build on.

GO ?= go

.PHONY: tier1 build test vet race cover chaos fmt-check all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/transport/... ./internal/live/... ./internal/dfsc/... ./internal/telemetry/... ./internal/monitor/... ./internal/mm/... ./internal/rm/... ./internal/faults/...

# chaos replays the self-healing drills: deterministic fault scripts
# (internal/faults) against live TCP deployments — mid-stream kill with
# offset-resumed failover, crash-restart liveness epochs, scripted Open
# errors, lease-sweeper keepalives — plus the older crash/redial suites.
chaos:
	$(GO) test -race -count=1 ./internal/faults/...
	$(GO) test -race -count=1 -run 'Chaos|Crash|Failover|Lease|Liveness|Heartbeat|Torn' ./internal/live/... ./internal/mm/... ./internal/rm/... ./internal/dfsc/... ./internal/wire/...

# cover writes one profile per gated package plus a merged coverage.out
# for the CI artifact, then enforces the floor (60%) via the gate script.
cover:
	mkdir -p coverage
	$(GO) test -coverprofile=coverage/telemetry.out ./internal/telemetry/
	$(GO) test -coverprofile=coverage/monitor.out ./internal/monitor/
	$(GO) test -coverprofile=coverage/faults.out ./internal/faults/
	$(GO) test -coverprofile=coverage/all.out -coverpkg=./... ./...
	./scripts/cover_gate.sh 60 coverage/telemetry.out coverage/monitor.out coverage/faults.out

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
