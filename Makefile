# Build/test entry points. `make tier1` is the acceptance gate every PR
# must keep green; `make race` exercises the concurrent paths (transport
# pool, CFP fan-out, live servers) under the race detector.

GO ?= go

.PHONY: tier1 build test vet race all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/transport/... ./internal/live/... ./internal/dfsc/...
