# Build/test entry points. `make tier1` is the acceptance gate every PR
# must keep green; `make race` exercises the concurrent paths (transport
# pool, CFP fan-out, live servers, telemetry scrapes) under the race
# detector; `make cover` enforces the per-package coverage floor on the
# observability packages; `make chaos` replays the deterministic
# fault-injection drills (scripted kill/error/torn-frame incidents over
# real TCP) plus the crash/liveness suites they build on; `make docs`
# keeps docs/OPERATIONS.md and the godoc surface in lock-step with the
# code.

GO ?= go

.PHONY: tier1 build test vet race cover chaos chaos-mm bench scenarios scenarios-tenant fuzz-smoke gobonly fmt-check docs all

all: tier1 vet

tier1: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -count=1 ./internal/wire/... ./internal/transport/... ./internal/live/... ./internal/dfsc/... ./internal/telemetry/... ./internal/monitor/... ./internal/mm/... ./internal/rm/... ./internal/faults/... ./internal/blkio/... ./internal/tenant/...

# chaos replays the self-healing drills: deterministic fault scripts
# (internal/faults) against live TCP deployments — mid-stream kill with
# offset-resumed failover, crash-restart liveness epochs, scripted Open
# errors, lease-sweeper keepalives — plus the older crash/redial suites.
chaos:
	$(GO) test -race -count=1 ./internal/faults/...
	$(GO) test -race -count=1 -run 'Chaos|Crash|Failover|Lease|Liveness|Heartbeat|Torn' ./internal/live/... ./internal/mm/... ./internal/rm/... ./internal/dfsc/... ./internal/wire/...

# chaos-mm drills the replicated metadata plane on its own: kill 1 of N
# live MM shards mid-workload (lease cache + successor failover keep
# opens green), stale-lease expiry racing the takeover handoff, and the
# in-process replicated-shard kill/takeover/heal suite — race-enabled.
chaos-mm:
	$(GO) test -race -count=1 -run 'ShardChaos|Replicated|ShardHealth|Unreplicated' ./internal/live/ ./internal/mm/

# cover writes one profile per gated package plus a merged coverage.out
# for the CI artifact, then enforces the floors via the gate script:
# 60% on the observability packages, 80% on the replicated metadata
# core (internal/mm carries the shard ring, health and handoff logic),
# on the QoS enforcement core (internal/blkio carries the
# work-conserving token tree every data stream throttles through), and
# on the tenant quota ledger (internal/tenant is the multi-tenant
# admission arithmetic every RM trusts).
cover:
	mkdir -p coverage
	$(GO) test -coverprofile=coverage/telemetry.out ./internal/telemetry/
	$(GO) test -coverprofile=coverage/monitor.out ./internal/monitor/
	$(GO) test -coverprofile=coverage/faults.out ./internal/faults/
	$(GO) test -coverprofile=coverage/scenario.out ./internal/scenario/
	$(GO) test -coverprofile=coverage/mm.out ./internal/mm/
	$(GO) test -coverprofile=coverage/blkio.out ./internal/blkio/
	$(GO) test -coverprofile=coverage/tenant.out ./internal/tenant/
	$(GO) test -coverprofile=coverage/all.out -coverpkg=./... ./...
	./scripts/cover_gate.sh 60 coverage/telemetry.out coverage/monitor.out coverage/faults.out coverage/scenario.out
	./scripts/cover_gate.sh 80 coverage/mm.out coverage/blkio.out coverage/tenant.out

# bench runs the data-plane benchmark harness: wire codec benchmarks plus
# the live-TCP streaming and striped-read benchmarks, parsed into
# BENCH_6.json, with the 0-allocs/op gate on the fast-path codecs and the
# K4-vs-K1 stripe-scaling floor. The work-conserving QoS benchmark
# (borrowing tree vs flat baseline) lands in BENCH_9.json, gated on
# strictly-above-flat utilization with zero assured-floor violations.
# BENCH_TIME tunes the per-benchmark budget (CI uses a shorter one).
bench:
	./scripts/bench.sh BENCH_6.json BENCH_9.json

# scenarios runs the million-client scenario engine with its SLO gates:
# every builtin scenario through the DES (10⁵–10⁶ simulated clients in
# full mode) plus a live-TCP slice each, reported into BENCH_7.json. Any
# SLO violation fails the target. SCEN_MODE=short runs the reduced CI
# shape; SCEN_SEED pins the master seed.
scenarios:
	./scripts/scenarios.sh BENCH_7.json

# scenarios-tenant runs the multi-tenant noisy-neighbor scenario alone:
# an abusive tenant storming past its per-RM bandwidth quota while the
# victim tenant's SLO gates — fail-rate ceiling, p99 ceiling, and the
# no-abuser-baseline fail-rate delta — prove quota isolation held. The
# abuser's own gate is a refusal floor: if the quota never bit, the run
# fails too. Reported into BENCH_10.json.
scenarios-tenant:
	SCEN_FLAGS="-scenario noisy-neighbor $(SCEN_FLAGS)" ./scripts/scenarios.sh BENCH_10.json

# fuzz-smoke gives each wire codec fuzz target a short randomized run on
# top of its seeded corpus — enough to catch decoder panics and checksum
# divergence without CI-hostile runtimes. Targets must run one at a time
# (go test allows a single -fuzz pattern per invocation).
FUZZ_TIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzBinaryChunkRoundTrip$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz '^FuzzChecksumEquivalence$$' -fuzztime $(FUZZ_TIME)

# gobonly builds the wire package with the binary fast path compiled out
# (the interop escape hatch) and proves both that the build still passes
# its suite and that it rejects binary frames with the typed error.
gobonly:
	$(GO) test -tags gobonly -count=1 ./internal/wire/

# docs runs the documentation-consistency suite (internal/docscheck):
# every flag the daemons register and every dfsqos_* telemetry series
# the tree can construct must appear in docs/OPERATIONS.md, and the
# godoc-surface packages must document every exported symbol (the
# revive-style comment-presence check, implemented on go/ast).
docs:
	$(GO) test -count=1 ./internal/docscheck/

fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
