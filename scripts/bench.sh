#!/usr/bin/env sh
# bench.sh — reproducible data-plane benchmark run.
#
# Runs the wire codec benchmarks and the live-TCP streaming benchmark,
# parses the `go test -bench` output into BENCH_4.json, and enforces the
# fast-path allocation ceiling: BenchmarkEncodeChunk/fast and
# BenchmarkDecodeChunk/fast — and their trace-slot-carrying Traced
# variants — must stay at (by default) 0 allocs/op. The zero-allocation
# property is the point of the fast path, and a regression here is a
# silent per-chunk cost on every data stream; gating the traced variants
# proves request tracing never bought observability with allocations.
#
# Usage:
#   ./scripts/bench.sh [out.json]
# Env:
#   BENCH_TIME     go test -benchtime value (default 2s; CI may lower it)
#   ALLOC_CEILING  max allocs/op for the gated fast-path benchmarks (default 0)
set -eu

OUT="${1:-BENCH_4.json}"
BENCH_TIME="${BENCH_TIME:-2s}"
ALLOC_CEILING="${ALLOC_CEILING:-0}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "== wire codec benchmarks (benchtime=$BENCH_TIME)"
go test ./internal/wire/ -run '^$' \
	-bench 'BenchmarkEncodeChunk|BenchmarkDecodeChunk|BenchmarkRoundTrip|BenchmarkStreamThroughput|BenchmarkChecksum' \
	-benchmem -benchtime "$BENCH_TIME" | tee -a "$RAW"

echo "== live TCP streaming benchmark (benchtime=$BENCH_TIME)"
go test ./internal/live/ -run '^$' \
	-bench 'BenchmarkLiveStreamThroughput' \
	-benchmem -benchtime "$BENCH_TIME" | tee -a "$RAW"

# Parse "BenchmarkName/sub-N  iters  ns/op  [MB/s]  [B/op]  [allocs/op]"
# lines into a JSON array. MB/s is absent on benchmarks without SetBytes.
awk -v out="$OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	ns = ""; mbs = ""; bop = ""; aop = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns  = $i
		if ($(i+1) == "MB/s")      mbs = $i
		if ($(i+1) == "B/op")      bop = $i
		if ($(i+1) == "allocs/op") aop = $i
	}
	line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
	if (bop != "") line = line sprintf(", \"b_per_op\": %s", bop)
	if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
	line = line "}"
	lines[n++] = line
}
END {
	print "[" > out
	for (i = 0; i < n; i++) print lines[i] (i < n-1 ? "," : "") >> out
	print "]" >> out
}
' "$RAW"

echo "== wrote $OUT"
cat "$OUT"

# Alloc regression gate on the fast-path chunk codecs, untraced and traced.
fail=0
for gated in "BenchmarkEncodeChunk/fast" "BenchmarkDecodeChunk/fast" \
	"BenchmarkEncodeChunkTraced/fast" "BenchmarkDecodeChunkTraced/fast"; do
	# The -N GOMAXPROCS suffix is absent when GOMAXPROCS=1, so it is optional.
	aop="$(awk -v b="$gated" '$1 ~ "^"b"(-[0-9]+)?$" && $(NF) == "allocs/op" { print $(NF-1) }' "$RAW")"
	if [ -z "$aop" ]; then
		echo "GATE: $gated did not run" >&2
		fail=1
	elif [ "$aop" -gt "$ALLOC_CEILING" ]; then
		echo "GATE: $gated at $aop allocs/op exceeds ceiling $ALLOC_CEILING" >&2
		fail=1
	else
		echo "GATE: $gated at $aop allocs/op (ceiling $ALLOC_CEILING) ok"
	fi
done
exit $fail
