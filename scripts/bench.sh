#!/usr/bin/env sh
# bench.sh — reproducible data-plane benchmark run.
#
# Runs the wire codec benchmarks and the live-TCP streaming benchmark,
# parses the `go test -bench` output into BENCH_4.json, and enforces the
# fast-path allocation ceiling: BenchmarkEncodeChunk/fast and
# BenchmarkDecodeChunk/fast — and their trace-slot-carrying Traced
# variants — must stay at (by default) 0 allocs/op. The zero-allocation
# property is the point of the fast path, and a regression here is a
# silent per-chunk cost on every data stream; gating the traced variants
# proves request tracing never bought observability with allocations.
#
# It also runs the striped-read scaling benchmark (K lanes over K
# throttled replicas) and enforces the stripe-scaling floor: K4 must
# deliver at least STRIPE_FLOOR times the K1 (single-RM) throughput,
# proving the K-wide scheduler actually aggregates per-replica bandwidth
# instead of serializing behind one throttle.
#
# Finally it runs the work-conserving QoS benchmark (one stream against an
# idle sibling's headroom, flat tree vs borrowing tree) into a second
# report and enforces two gates: the conserving mode must beat the flat
# mode's throughput by WORKCONSERVE_FLOOR (the whole point of token
# borrowing is utilization strictly above the flat baseline), and the
# benchmark's contention phase must report zero floor violations in both
# modes (borrowed headroom must never dent a busy neighbor's guarantee).
#
# Usage:
#   ./scripts/bench.sh [out.json] [workconserve-out.json]
# Env:
#   BENCH_TIME        go test -benchtime value (default 2s; CI may lower it)
#   ALLOC_CEILING     max allocs/op for the gated fast-path benchmarks (default 0)
#   STRIPE_FLOOR      min K4/K1 throughput ratio for the striped read (default 2.5)
#   WORKCONSERVE_FLOOR min conserving/flat throughput ratio (default 1.5)
set -eu

OUT="${1:-BENCH_6.json}"
OUT9="${2:-BENCH_9.json}"
BENCH_TIME="${BENCH_TIME:-2s}"
ALLOC_CEILING="${ALLOC_CEILING:-0}"
STRIPE_FLOOR="${STRIPE_FLOOR:-2.5}"
WORKCONSERVE_FLOOR="${WORKCONSERVE_FLOOR:-1.5}"
RAW="$(mktemp)"
RAW9="$(mktemp)"
trap 'rm -f "$RAW" "$RAW9"' EXIT

echo "== wire codec benchmarks (benchtime=$BENCH_TIME)"
go test ./internal/wire/ -run '^$' \
	-bench 'BenchmarkEncodeChunk|BenchmarkDecodeChunk|BenchmarkRoundTrip|BenchmarkStreamThroughput|BenchmarkChecksum|BenchmarkEncodeRangedRead|BenchmarkDecodeRangedRead' \
	-benchmem -benchtime "$BENCH_TIME" | tee -a "$RAW"

echo "== live TCP streaming benchmarks (benchtime=$BENCH_TIME)"
go test ./internal/live/ -run '^$' \
	-bench 'BenchmarkLiveStreamThroughput|BenchmarkLiveStripedReadThroughput' \
	-benchmem -benchtime "$BENCH_TIME" | tee -a "$RAW"

# Parse "BenchmarkName/sub-N  iters  ns/op  [MB/s]  [B/op]  [allocs/op]"
# lines into a JSON array. MB/s is absent on benchmarks without SetBytes.
awk -v out="$OUT" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	ns = ""; mbs = ""; bop = ""; aop = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")     ns  = $i
		if ($(i+1) == "MB/s")      mbs = $i
		if ($(i+1) == "B/op")      bop = $i
		if ($(i+1) == "allocs/op") aop = $i
	}
	line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
	if (bop != "") line = line sprintf(", \"b_per_op\": %s", bop)
	if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
	line = line "}"
	lines[n++] = line
}
END {
	print "[" > out
	for (i = 0; i < n; i++) print lines[i] (i < n-1 ? "," : "") >> out
	print "]" >> out
}
' "$RAW"

echo "== wrote $OUT"
cat "$OUT"

# Alloc regression gate on the fast-path chunk and ranged-read codecs:
# untraced, traced, and tenant-tagged.
fail=0
for gated in "BenchmarkEncodeChunk/fast" "BenchmarkDecodeChunk/fast" \
	"BenchmarkEncodeChunkTraced/fast" "BenchmarkDecodeChunkTraced/fast" \
	"BenchmarkEncodeChunkTenant/fast" "BenchmarkDecodeChunkTenant/fast" \
	"BenchmarkEncodeRangedRead/fast" "BenchmarkDecodeRangedRead/fast"; do
	# The -N GOMAXPROCS suffix is absent when GOMAXPROCS=1, so it is optional.
	aop="$(awk -v b="$gated" '$1 ~ "^"b"(-[0-9]+)?$" && $(NF) == "allocs/op" { print $(NF-1) }' "$RAW")"
	if [ -z "$aop" ]; then
		echo "GATE: $gated did not run" >&2
		fail=1
	elif [ "$aop" -gt "$ALLOC_CEILING" ]; then
		echo "GATE: $gated at $aop allocs/op exceeds ceiling $ALLOC_CEILING" >&2
		fail=1
	else
		echo "GATE: $gated at $aop allocs/op (ceiling $ALLOC_CEILING) ok"
	fi
done

# Stripe-scaling gate: K4 striped throughput must beat K1 by STRIPE_FLOOR.
stripe_mbs() {
	awk -v b="BenchmarkLiveStripedReadThroughput/$1" \
		'$1 ~ "^"b"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == "MB/s") print $i }' "$RAW"
}
k1="$(stripe_mbs K1)"
k4="$(stripe_mbs K4)"
if [ -z "$k1" ] || [ -z "$k4" ]; then
	echo "GATE: striped K1/K4 benchmarks did not run (K1='$k1' K4='$k4')" >&2
	fail=1
elif ! awk -v k1="$k1" -v k4="$k4" -v floor="$STRIPE_FLOOR" \
	'BEGIN { exit !(k4 >= floor * k1) }'; then
	echo "GATE: striped K4 at $k4 MB/s is under ${STRIPE_FLOOR}x the K1 $k1 MB/s" >&2
	fail=1
else
	echo "GATE: striped K4 at $k4 MB/s vs K1 $k1 MB/s (floor ${STRIPE_FLOOR}x) ok"
fi

echo "== work-conserving QoS benchmark (benchtime=$BENCH_TIME)"
go test ./internal/live/ -run '^$' \
	-bench 'BenchmarkLiveWorkConservingThroughput' \
	-benchmem -benchtime "$BENCH_TIME" | tee "$RAW9"

# Same parse as above, plus the violations column: the benchmark reports
# violations=1 when the contending stream's throughput fell under its
# assured floor during the borrow phase.
awk -v out="$OUT9" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
	ns = ""; mbs = ""; bop = ""; aop = ""; vio = ""
	for (i = 2; i < NF; i++) {
		if ($(i+1) == "ns/op")      ns  = $i
		if ($(i+1) == "MB/s")       mbs = $i
		if ($(i+1) == "B/op")       bop = $i
		if ($(i+1) == "allocs/op")  aop = $i
		if ($(i+1) == "violations") vio = $i
	}
	line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
	if (mbs != "") line = line sprintf(", \"mb_per_s\": %s", mbs)
	if (vio != "") line = line sprintf(", \"floor_violations\": %s", vio)
	if (bop != "") line = line sprintf(", \"b_per_op\": %s", bop)
	if (aop != "") line = line sprintf(", \"allocs_per_op\": %s", aop)
	line = line "}"
	lines[n++] = line
}
END {
	print "[" > out
	for (i = 0; i < n; i++) print lines[i] (i < n-1 ? "," : "") >> out
	print "]" >> out
}
' "$RAW9"

echo "== wrote $OUT9"
cat "$OUT9"

# Work-conserving gates: the borrowing tree must deliver utilization
# strictly above the flat baseline, and neither mode may dent the
# contending stream's assured floor.
wc_col() {
	awk -v b="BenchmarkLiveWorkConservingThroughput/$1" -v unit="$2" \
		'$1 ~ "^"b"(-[0-9]+)?$" { for (i = 2; i < NF; i++) if ($(i+1) == unit) print $i }' "$RAW9"
}
flat="$(wc_col flat MB/s)"
cons="$(wc_col conserving MB/s)"
if [ -z "$flat" ] || [ -z "$cons" ]; then
	echo "GATE: work-conserving benchmarks did not run (flat='$flat' conserving='$cons')" >&2
	fail=1
elif ! awk -v f="$flat" -v c="$cons" -v floor="$WORKCONSERVE_FLOOR" \
	'BEGIN { exit !(c >= floor * f) }'; then
	echo "GATE: conserving at $cons MB/s is under ${WORKCONSERVE_FLOOR}x the flat $flat MB/s" >&2
	fail=1
else
	echo "GATE: conserving at $cons MB/s vs flat $flat MB/s (floor ${WORKCONSERVE_FLOOR}x) ok"
fi
for mode in flat conserving; do
	vio="$(wc_col "$mode" violations)"
	if [ -z "$vio" ]; then
		echo "GATE: $mode mode reported no violations metric" >&2
		fail=1
	elif awk -v v="$vio" 'BEGIN { exit !(v > 0) }'; then
		echo "GATE: $mode mode dented the assured floor ($vio violations)" >&2
		fail=1
	else
		echo "GATE: $mode mode held every assured floor (0 violations)"
	fi
done
exit $fail
