#!/bin/sh
# cover_gate.sh FLOOR profile.out [profile.out ...]
#
# Fails (exit 1) if any of the given Go coverage profiles reports total
# statement coverage below FLOOR percent. Used by `make cover` to hold
# internal/telemetry and internal/monitor at or above the floor.
set -eu

if [ "$#" -lt 2 ]; then
    echo "usage: $0 FLOOR profile.out [profile.out ...]" >&2
    exit 2
fi

floor="$1"
shift

status=0
for profile in "$@"; do
    if [ ! -f "$profile" ]; then
        echo "cover_gate: missing profile $profile" >&2
        status=1
        continue
    fi
    total="$(go tool cover -func="$profile" | tail -1 | awk '{gsub(/%/, "", $NF); print $NF}')"
    if [ -z "$total" ]; then
        echo "cover_gate: could not read total from $profile" >&2
        status=1
        continue
    fi
    ok="$(awk -v t="$total" -v f="$floor" 'BEGIN { print (t+0 >= f+0) ? 1 : 0 }')"
    if [ "$ok" -eq 1 ]; then
        echo "cover_gate: $profile ${total}% >= ${floor}% ok"
    else
        echo "cover_gate: $profile ${total}% < ${floor}% FAIL" >&2
        status=1
    fi
done
exit $status
