#!/usr/bin/env sh
# scenarios.sh — named scenario run with SLO gates.
#
# Builds and runs cmd/dfsqos-scenario: every builtin scenario (Zipfian
# hot-file skew, flash-crowd burst, diurnal tide, mixed operation storm)
# replayed open-loop through the discrete-event cluster — 10⁵–10⁶
# simulated clients in full mode — plus a scaled-down live-TCP slice per
# scenario, with per-class p50/p99/p999 latency, fail rate and aggregate
# utilization written into the report. The runner exits non-zero when any
# scenario violates its declarative SLO, so this script IS the gate: CI
# runs it in short mode (SCEN_MODE=short) and uploads the report.
#
# Usage:
#   ./scripts/scenarios.sh [out.json]
# Env:
#   SCEN_MODE   "full" (default) or "short" — short runs the reduced CI shape
#   SCEN_SEED   master seed for every stream in the run (default 1)
#   SCEN_FLAGS  extra flags for dfsqos-scenario (e.g. "-no-live")
set -eu

OUT="${1:-BENCH_7.json}"
SCEN_MODE="${SCEN_MODE:-full}"
SCEN_SEED="${SCEN_SEED:-1}"
SCEN_FLAGS="${SCEN_FLAGS:-}"

MODE_FLAG=""
if [ "$SCEN_MODE" = "short" ]; then
    MODE_FLAG="-short"
fi

echo "scenarios: mode=$SCEN_MODE seed=$SCEN_SEED -> $OUT"
# shellcheck disable=SC2086 # SCEN_FLAGS is intentionally word-split
go run ./cmd/dfsqos-scenario $MODE_FLAG -seed "$SCEN_SEED" -o "$OUT" $SCEN_FLAGS
echo "scenarios: report written to $OUT"
