// Command replay is the paper's request scheduler (§VI-A): it reads an
// access-pattern trace (cmd/workloadgen) and "send[s] the request according
// to the request arrival timestamp recorded in the generated access pattern
// to the corresponding DFSC" — here, one in-process DFSC per trace client,
// all speaking the live ECNP protocol to a running mmd/rmd deployment.
//
//	workloadgen -users 64 -horizon 600 -seed 1 -o trace.json
//	replay -mm 127.0.0.1:7000 -trace trace.json -scale 10 -scenario firm
//
// -scale compresses time: 10 replays a 600 s trace in 60 wall seconds
// (reservation durations shrink by the same factor, so the bandwidth
// dynamics are preserved).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/cluster"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/workload"
)

func main() {
	var (
		mmAddr   = flag.String("mm", "127.0.0.1:7000", "metadata manager address")
		trace    = flag.String("trace", "", "access-pattern JSON from workloadgen (required)")
		policy   = flag.String("policy", "(1,0,0)", "resource selection policy")
		scenario = flag.String("scenario", "firm", "allocation scenario: soft or firm")
		seed     = flag.Uint64("seed", 1, "deployment master seed (must match rmd)")
		numRMs   = flag.Int("num-rms", 16, "total RMs in the deployment")
		degree   = flag.Int("degree", 3, "static replica degree")
		files    = flag.Int("files", 1000, "catalog size")
		scale    = flag.Float64("scale", 1, "virtual seconds per wall second")
	)
	flag.Parse()
	if *trace == "" {
		fail(fmt.Errorf("-trace is required"))
	}

	f, err := os.Open(*trace)
	if err != nil {
		fail(err)
	}
	pattern, err := workload.Load(f)
	f.Close()
	if err != nil {
		fail(err)
	}

	pol, err := selection.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	scen, err := qos.Parse(*scenario)
	if err != nil {
		fail(err)
	}
	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = *files
	cat, _, err := cluster.SeededCorpus(*seed, catCfg, *numRMs, *degree)
	if err != nil {
		fail(err)
	}

	sched := live.NewWallScheduler(*scale)
	defer sched.Stop()

	// One DFSC per trace client, each with its own MM channel and
	// directory, mirroring the paper's 8 independent clients.
	clients := make(map[ids.DFSCID]*dfsc.Client)
	var cleanups []func()
	defer func() {
		for _, c := range cleanups {
			c()
		}
	}()
	for _, r := range pattern.Requests {
		if _, ok := clients[r.DFSC]; ok {
			continue
		}
		mapper, err := live.DialMM(*mmAddr)
		if err != nil {
			fail(err)
		}
		dir := live.NewDirectory(mapper)
		cleanups = append(cleanups, func() { dir.Close(); mapper.Close() })
		c, err := dfsc.New(dfsc.Options{
			ID:        r.DFSC,
			Mapper:    mapper,
			Directory: dir,
			Scheduler: sched,
			Catalog:   cat,
			Policy:    pol,
			Scenario:  scen,
			Rand:      rng.New(*seed).Split(fmt.Sprintf("replay/%d", r.DFSC)),
		})
		if err != nil {
			fail(err)
		}
		clients[r.DFSC] = c
	}

	fmt.Fprintf(os.Stderr, "replay: %d requests over %.0f virtual s (%.0f wall s) across %d DFSCs\n",
		pattern.Len(), pattern.Config.HorizonSec, pattern.Config.HorizonSec / *scale, len(clients))

	start := time.Now()
	for i, r := range pattern.Requests {
		wallAt := time.Duration(r.AtSec / *scale * float64(time.Second))
		if d := time.Until(start.Add(wallAt)); d > 0 {
			time.Sleep(d)
		}
		out := clients[r.DFSC].Access(r.File)
		status := out.RM.String()
		if !out.OK {
			status = "FAIL: " + out.Reason
		}
		fmt.Printf("t=%8.1fs %v %v %v -> %s\n", r.AtSec, r.User, r.DFSC, r.File, status)
		_ = i
	}

	// Summarize per the scenario's criterion.
	var total, failed int64
	idsSorted := make([]ids.DFSCID, 0, len(clients))
	for id := range clients {
		idsSorted = append(idsSorted, id)
	}
	sort.Slice(idsSorted, func(i, j int) bool { return idsSorted[i] < idsSorted[j] })
	for _, id := range idsSorted {
		st := clients[id].Stats()
		total += st.Requests
		failed += st.Failed
		fmt.Fprintf(os.Stderr, "replay: %v issued %d, failed %d\n", id, st.Requests, st.Failed)
	}
	rate := 0.0
	if total > 0 {
		rate = float64(failed) / float64(total)
	}
	fmt.Fprintf(os.Stderr, "replay: done in %.1fs — %d requests, %s %.3f%%\n",
		time.Since(start).Seconds(), total, scen.Criterion(), 100*rate)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "replay: %v\n", err)
	os.Exit(1)
}
