// Command qosbench regenerates the paper's evaluation tables and figures
// on the simulated cluster.
//
// Usage:
//
//	qosbench -exp table1            # one experiment
//	qosbench -exp all               # every table and figure
//	qosbench -exp table4 -quick     # reduced scale for a fast look
//	qosbench -list                  # list experiment ids
//
// Every run is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dfsqos/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table1..table7, fig4..fig7, ablation-*, 'all' or 'ablations')")
		seed     = flag.Uint64("seed", 1, "master random seed")
		quick    = flag.Bool("quick", false, "run at reduced scale (shorter horizon, fewer sweeps)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		csvDir   = flag.String("csv", "", "also write <id>.cells.csv / <id>.series.csv into this directory")
		repeats  = flag.Int("repeats", 1, "average each table cell over this many seeds")
		parallel = flag.Int("parallel", runtime.NumCPU(), "experiments run concurrently for 'all'/'ablations'")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		for _, id := range experiments.AblationIDs() {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	opts.Seed = *seed
	opts.Repeats = *repeats

	export := func(res *experiments.Result) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		if len(res.Cells) > 0 {
			f, err := os.Create(filepath.Join(*csvDir, res.ID+".cells.csv"))
			if err != nil {
				return err
			}
			if err := res.WriteCellsCSV(f); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		if len(res.Series) > 0 {
			f, err := os.Create(filepath.Join(*csvDir, res.ID+".series.csv"))
			if err != nil {
				return err
			}
			if err := res.WriteSeriesCSV(f); err != nil {
				f.Close()
				return err
			}
			f.Close()
		}
		return nil
	}
	show := func(res *experiments.Result, secs float64) error {
		fmt.Printf("== %s — %s (%.1fs)\n%s\n", strings.ToUpper(res.ID), res.Title, secs, res.Text)
		return export(res)
	}

	groups := map[string][]string{
		"all":       experiments.IDs(),
		"ablations": experiments.AblationIDs(),
	}
	if group, ok := groups[*exp]; ok {
		start := time.Now()
		results, err := experiments.RunMany(group, opts, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qosbench: %v\n", err)
			os.Exit(1)
		}
		secs := time.Since(start).Seconds()
		for _, res := range results {
			if err := show(res, secs/float64(len(results))); err != nil {
				fmt.Fprintf(os.Stderr, "qosbench: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	start := time.Now()
	res, err := experiments.Run(*exp, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qosbench: %v\n", err)
		os.Exit(1)
	}
	if err := show(res, time.Since(start).Seconds()); err != nil {
		fmt.Fprintf(os.Stderr, "qosbench: %v\n", err)
		os.Exit(1)
	}
}
