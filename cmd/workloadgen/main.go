// Command workloadgen generates the paper's multi-user access pattern —
// NET request arrivals over a Zipf-popular video catalog — as a JSON trace
// that the request scheduler (or an external tool) can replay.
//
//	workloadgen -users 256 -horizon 7200 -mean 300 -seed 1 > trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dfsqos/internal/catalog"
	"dfsqos/internal/rng"
	"dfsqos/internal/workload"
)

func main() {
	var (
		users   = flag.Int("users", 256, "number of concurrent users")
		dfscs   = flag.Int("dfscs", 8, "number of DFS clients users spread over")
		mean    = flag.Float64("mean", 300, "per-user mean inter-arrival time β (seconds)")
		horizon = flag.Float64("horizon", 7200, "pattern length (seconds)")
		files   = flag.Int("files", 1000, "catalog size")
		skew    = flag.Float64("skew", 0, "Zipf popularity skew (0 = paper default)")
		seed    = flag.Uint64("seed", 1, "master random seed")
		out     = flag.String("o", "-", "output path ('-' = stdout)")
	)
	flag.Parse()

	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = *files
	if *skew > 0 {
		catCfg.ZipfSkew = *skew
	}
	master := rng.New(*seed)
	cat, err := catalog.Generate(catCfg, master.Split("catalog"))
	if err != nil {
		fail(err)
	}
	pattern, err := workload.Generate(workload.Config{
		NumUsers:       *users,
		NumDFSC:        *dfscs,
		MeanArrivalSec: *mean,
		HorizonSec:     *horizon,
	}, cat, master.Split("workload"))
	if err != nil {
		fail(err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := pattern.Save(w); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "workloadgen: %d requests over %.0fs for %d users (seed %d)\n",
		pattern.Len(), *horizon, *users, *seed)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "workloadgen: %v\n", err)
	os.Exit(1)
}
