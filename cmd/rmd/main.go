// Command rmd runs one Resource Manager daemon — the Storage Provider role
// of the ECNP model. It registers its resources with the Metadata Manager,
// answers Call-For-Proposals with bids, admits QoS-assured data accesses
// against a blkio-throttled virtual disk, and runs the dynamic-replication
// source and destination endpoints.
//
// The file corpus is derived deterministically from -seed (see
// cluster.SeededCorpus), so every rmd of one deployment provisions exactly
// the replicas the shared placement assigns it:
//
//	rmd -id 1 -mm 127.0.0.1:7000 -capacity 128Mbps -seed 1 -num-rms 16
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/cluster"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/monitor"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/tenant"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
	"dfsqos/internal/wire"
)

// shutdownTimeout bounds the monitor drain on SIGTERM.
const shutdownTimeout = 3 * time.Second

func main() {
	var (
		id      = flag.Int("id", 1, "RM identifier (1-based)")
		addr    = flag.String("addr", "127.0.0.1:0", "listen address")
		mmAddr  = flag.String("mm", "127.0.0.1:7000", "metadata manager address; comma-separated ring-index-aligned list for a shard group")
		mmRep   = flag.Int("mm-replication", 1, "owner shards per file in the MM shard group (must match mmd -replication)")
		capStr  = flag.String("capacity", "18Mbps", "disk bandwidth (e.g. 128Mbps)")
		storStr = flag.String("storage", "16GB", "disk size")
		seed    = flag.Uint64("seed", 1, "deployment master seed (shared by all components)")
		numRMs  = flag.Int("num-rms", 16, "total RMs in the deployment")
		degree  = flag.Int("degree", 3, "static replica degree")
		files   = flag.Int("files", 1000, "catalog size")
		repStr  = flag.String("rep", "static", `replication strategy: "static", "baseline" or "Rep(n,m)"`)
		destStr = flag.String("dest", "random", "destination selection: random, lbf, weighted")
		scale   = flag.Float64("scale", 1, "virtual seconds per wall second")
		monAddr = flag.String("monitor", "", "HTTP stats address (e.g. 127.0.0.1:0); empty disables")
		dbgAddr = flag.String("debug-addr", "", "standalone debug HTTP address (/traces + pprof); empty serves them on -monitor only")
		traceN  = flag.Int("trace-ring", 4096, "span ring capacity for request tracing (rounded up to a power of two)")
		verbose = flag.Bool("v", false, "log connection errors")
		hbIv    = flag.Duration("heartbeat-interval", 0, "liveness beacon period to the MM; 0 disables")
		leaseTT = flag.Duration("lease-ttl", 0, "reservation lease TTL (wall time); idle reservations past it are reclaimed; 0 disables")
		oversub = flag.Float64("oversub", 1, "admission oversubscription ratio: bids and firm admission extend to capacity×ratio while assured floors stay enforced (1 = nominal)")
		sqos    = flag.Bool("stream-qos", false, "route each reservation's stream through its own work-conserving blkio group (assured = bitrate)")
		quotasS = flag.String("tenant-quotas", "", `per-tenant quota table "1=4Mbps:1GB:2,2=2Mbps,..." (<tenant>=<bw>:<bytes>:<weight>); empty disables tenancy enforcement`)
		sceil   = flag.Float64("stream-ceil", 1, "per-stream burst ceiling as a fraction of capacity under -stream-qos (0 = flat: ceiling equals the assured floor)")
		faultsS = flag.String("faults", "", "fault-injection spec (chaos testing; see internal/faults)")
		tcfg    = transport.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	capacity, err := units.ParseRate(*capStr)
	if err != nil {
		fail(err)
	}
	storage, err := units.ParseSize(*storStr)
	if err != nil {
		fail(err)
	}
	strat, err := replication.ParseStrategy(*repStr)
	if err != nil {
		fail(err)
	}
	dest, err := replication.ParseDestStrategy(*destStr)
	if err != nil {
		fail(err)
	}
	repCfg := replication.DefaultConfig(strat)
	repCfg.Dest = dest
	quotas, err := tenant.ParseQuotas(*quotasS)
	if err != nil {
		fail(err)
	}

	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = *files
	cat, placement, err := cluster.SeededCorpus(*seed, catCfg, *numRMs, *degree)
	if err != nil {
		fail(err)
	}
	rmID := ids.RMID(*id)

	// One registry aggregates transport, server, RM core, blkio and
	// replication telemetry on this daemon's /metrics page.
	reg := telemetry.NewRegistry()
	tcfg.Metrics = transport.NewMetrics(reg)
	wire.RegisterCodecMetrics(reg)
	tracer := trace.New(trace.Options{Actor: fmt.Sprintf("rm%d", *id), RingSize: *traceN, Registry: reg})

	// Build the throttled virtual disk and provision this RM's replicas:
	// the blkio group caps both read and write at the RM's capacity, as
	// the paper's loop-device/cgroup binding does.
	ctrl := blkio.NewController()
	ctrl.SetMetrics(blkio.NewMetrics(reg))
	disk, err := vdisk.New(storage, ctrl, fmt.Sprintf("vm%d", rmID), capacity, capacity)
	if err != nil {
		fail(err)
	}
	fileMetas := make(map[ids.FileID]rm.FileMeta)
	for _, f := range placement.FilesOn(rmID) {
		meta := cat.File(f)
		fileMetas[f] = rm.FileMeta{Bitrate: meta.Bitrate, Size: meta.Size, DurationSec: meta.DurationSec}
		if err := disk.Provision(live.FileName(f), meta.Size); err != nil {
			fail(fmt.Errorf("provisioning %v: %w", f, err))
		}
	}

	mapper, err := dialMapper(*mmAddr, *mmRep, *tcfg, reg)
	if err != nil {
		fail(err)
	}
	sched := live.NewWallScheduler(*scale)
	peers := live.NewDirectoryConfig(mapper, *tcfg)
	copier := live.NewCopier(disk, peers, *scale)
	copier.SetMetrics(live.NewCopierMetrics(reg))
	copier.SetTracer(tracer)
	var ledger *tenant.Ledger
	if len(quotas) > 0 {
		ledger = tenant.NewLedger()
		ledger.SetMetrics(tenant.NewMetrics(reg))
		for t, q := range quotas {
			ledger.Set(t, q)
		}
		log.Printf("rmd: %v enforcing quotas for %d tenant(s)", rmID, len(quotas))
	}
	node, err := rm.New(rm.Options{
		Info:        ecnp.RMInfo{ID: rmID, Capacity: capacity, StorageBytes: storage},
		Scheduler:   sched,
		Mapper:      mapper,
		History:     history.DefaultConfig(),
		Replication: repCfg,
		Rand:        rng.New(*seed).Split(fmt.Sprintf("rmd/%d", rmID)),
		Files:       fileMetas,
		// Replication moves real bytes between daemons, paced at the
		// replication rate scaled to wall time.
		Copier:  copier,
		Metrics: rm.NewMetrics(reg),
		Oversub: *oversub,
		Tenants: ledger,
		// The lease TTL is specified in wall time; the RM's scheduler
		// runs virtual seconds at -scale× wall, so convert.
		LeaseTTLSec: leaseTT.Seconds() * *scale,
	})
	if err != nil {
		fail(err)
	}
	srv, err := live.NewRMServer(node, disk, *addr)
	if err != nil {
		fail(err)
	}
	if *sqos {
		if err := srv.EnableStreamQoS(*sceil); err != nil {
			fail(err)
		}
		log.Printf("rmd: %v stream QoS on (ceiling %.2f× capacity)", rmID, *sceil)
	}
	srv.SetReplyTimeout(tcfg.CallTimeout)
	srv.SetMetrics(live.NewServerMetrics(reg, "rm"))
	srv.SetTracer(tracer)
	if script, err := faults.Parse(*faultsS); err != nil {
		fail(err)
	} else if script != nil {
		script.SetMetrics(faults.NewMetrics(reg))
		srv.SetFaults(script)
		log.Printf("rmd: %v fault injection armed: %s", rmID, *faultsS)
	}
	if *verbose {
		srv.SetLogger(log.Printf)
		mapper.SetLogger(log.Printf)
		peers.SetLogger(log.Printf)
	}

	// Register with the dialable address, then wire the peer directory
	// for replication. The address is stamped onto the node itself so the
	// heartbeat loop's self-heal re-registration advertises it too.
	node.SetAddr(srv.Addr())
	if err := node.Register(); err != nil {
		fail(err)
	}
	node.SetDirectory(peers)
	log.Printf("rmd: %v (%v, %d files, %v) listening on %s, registered at %s",
		rmID, capacity, len(fileMetas), strat, srv.Addr(), *mmAddr)

	// Self-healing layer: periodic liveness beacons to the MM (with
	// automatic re-registration when the MM forgot us) and the lease
	// sweeper that reclaims orphaned reservations.
	var stopBeat, stopSweep func()
	if *hbIv > 0 {
		stopBeat = live.StartHeartbeats(node, mapper, *hbIv, log.Printf)
		log.Printf("rmd: %v heartbeating every %v", rmID, *hbIv)
	}
	if *leaseTT > 0 {
		period := *leaseTT / 2
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		stopSweep = live.StartLeaseSweeper(node, sched, period, log.Printf)
		log.Printf("rmd: %v lease TTL %v (sweep every %v)", rmID, *leaseTT, period)
	}
	var monSrv *http.Server
	if *monAddr != "" {
		var bound string
		monSrv, bound, err = monitor.Serve(*monAddr, monitor.NewRMHandler(node, disk, sched, reg, tracer))
		if err != nil {
			fail(err)
		}
		log.Printf("rmd: %v stats at http://%s/stats, metrics at http://%s/metrics, traces at http://%s/traces", rmID, bound, bound, bound)
	}
	var dbgSrv *http.Server
	if *dbgAddr != "" {
		var bound string
		dbgSrv, bound, err = monitor.Serve(*dbgAddr, monitor.NewDebugHandler(tracer))
		if err != nil {
			fail(err)
		}
		log.Printf("rmd: %v debug at http://%s/traces and http://%s/debug/pprof/", rmID, bound, bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("rmd: %v shutting down", rmID)
	if stopBeat != nil {
		stopBeat()
	}
	if stopSweep != nil {
		stopSweep()
	}
	if err := monitor.Shutdown(monSrv, shutdownTimeout); err != nil {
		log.Printf("rmd: monitor shutdown: %v", err)
	}
	if err := monitor.Shutdown(dbgSrv, shutdownTimeout); err != nil {
		log.Printf("rmd: debug shutdown: %v", err)
	}
	srv.Close()
	sched.Stop()
	mapper.Close()
}

// mapperStub is the client surface rmd needs from its metadata plane;
// both the single-MM stub and the shard-group mapper provide it.
type mapperStub interface {
	ecnp.Mapper
	live.Beater
	SetLogger(func(string, ...any))
	Close() error
}

// dialMapper connects the metadata stub: a plain MM client for one
// address, a successor-failover ShardMapper for a comma-separated shard
// group.
func dialMapper(spec string, rep int, tcfg transport.Config, reg *telemetry.Registry) (mapperStub, error) {
	addrs := strings.Split(spec, ",")
	if len(addrs) == 1 {
		return live.DialMMConfig(addrs[0], tcfg)
	}
	sm, err := live.DialShardMapper(addrs, rep, tcfg)
	if err != nil {
		return nil, err
	}
	sm.SetMetrics(live.NewShardMapperMetrics(reg))
	return sm, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rmd: %v\n", err)
	os.Exit(1)
}
