// Command mmd runs the Metadata Manager daemon — the Mapper role of the
// ECNP model. It maintains the global resource list and the file → replica
// map; RMs register with it and DFS clients query it.
//
// Per the paper's initialization order (Fig. 2) the MM starts first, then
// the RMs register, and the DFSCs launch last:
//
//	mmd -addr 127.0.0.1:7000
//	rmd -id 1 -mm 127.0.0.1:7000 -capacity 128Mbps ...
//	dfsc -mm 127.0.0.1:7000 -policy "(1,0,0)" ...
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/faults"
	"dfsqos/internal/live"
	"dfsqos/internal/mm"
	"dfsqos/internal/monitor"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

// shutdownTimeout bounds the monitor drain on SIGTERM.
const shutdownTimeout = 3 * time.Second

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7000", "listen address")
		shards  = flag.Int("shards", 1, "DHT shards for the replica map (1 = the paper's single MM)")
		rep     = flag.Int("replication", 1, "owner shards per file mapping (successor-list replication; 1 = unreplicated)")
		shardIx = flag.Int("shard-index", 0, "this daemon's ring index within a shard group (with -peers)")
		peersS  = flag.String("peers", "", "comma-separated addresses of every shard-group member, ring-index aligned (enables shard-group mode)")
		beatIv  = flag.Duration("shard-beat-interval", time.Second, "shard-to-shard heartbeat period in shard-group mode")
		monAddr = flag.String("monitor", "", "HTTP stats address; empty disables")
		dbgAddr = flag.String("debug-addr", "", "standalone debug HTTP address (/traces + pprof); empty serves them on -monitor only")
		traceN  = flag.Int("trace-ring", 4096, "span ring capacity for request tracing (rounded up to a power of two)")
		verbose = flag.Bool("v", false, "log every connection error")
		hbIv    = flag.Duration("heartbeat-interval", 0, "expected RM heartbeat period; 0 disables liveness tracking")
		misses  = flag.Int("liveness-misses", 3, "consecutive missed heartbeats before an RM is considered dead")
		faultsS = flag.String("faults", "", "fault-injection spec (chaos testing; see internal/faults)")
		// -call-timeout bounds each reply write (a client that stops
		// reading cannot wedge a handler); -dial-timeout and -pool-size
		// are accepted for deployment-script symmetry and apply to any
		// outbound control connections the daemon opens.
		tcfg = transport.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	wire.RegisterCodecMetrics(reg)
	tracer := trace.New(trace.Options{Actor: "mm", RingSize: *traceN, Registry: reg})
	lcfg := mm.LivenessConfig{HeartbeatInterval: *hbIv, MissThreshold: *misses}
	script, err := faults.Parse(*faultsS)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
		os.Exit(1)
	}
	if script != nil {
		script.SetMetrics(faults.NewMetrics(reg))
	}
	// Three deployment shapes: a shard-group member (-peers) serving one
	// slice of the keyspace and mirroring to successors over TCP, an
	// in-process sharded map (-shards > 1, the DES-style single binary),
	// or the paper's single MM.
	var mapper ecnp.Mapper
	var shard *live.MMShard
	var peerList []string
	if *peersS != "" {
		peerList = strings.Split(*peersS, ",")
		s, err := live.NewMMShard(*shardIx, len(peerList), *rep, mm.LivenessConfig{HeartbeatInterval: *beatIv, MissThreshold: *misses})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
			os.Exit(1)
		}
		s.SetLiveness(lcfg)
		s.SetMetrics(mm.NewMetrics(reg))
		if script != nil {
			s.SetFaults(script)
		}
		shard = s
		mapper = s
	} else if *shards > 1 {
		sm := mm.NewShardedReplicated(*shards, *rep)
		sm.SetLiveness(lcfg)
		sm.SetMetrics(mm.NewMetrics(reg))
		mapper = sm
	} else {
		m := mm.New()
		m.SetLiveness(lcfg)
		m.SetMetrics(mm.NewMetrics(reg))
		mapper = m
	}
	srv, err := live.NewMMServer(mapper, *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
		os.Exit(1)
	}
	srv.SetReplyTimeout(tcfg.CallTimeout)
	srv.SetMetrics(live.NewServerMetrics(reg, "mm"))
	srv.SetTracer(tracer)
	if script != nil {
		srv.SetFaults(script)
		log.Printf("mmd: fault injection armed: %s", *faultsS)
	}
	if lcfg.Enabled() {
		log.Printf("mmd: liveness armed: %v heartbeat, dead after %d misses", *hbIv, *misses)
	}
	if *verbose {
		srv.SetLogger(log.Printf)
	}
	var stopBeats func()
	if shard != nil {
		if *verbose {
			shard.SetLogger(log.Printf)
		}
		// Peers dial lazily per call, so member start order does not
		// matter: a not-yet-listening successor just fails its first
		// mirrors and reconverges through the heal handoff.
		if err := shard.DialPeers(peerList, *tcfg); err != nil {
			fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
			os.Exit(1)
		}
		stopBeats = shard.StartShardBeats(*beatIv)
		log.Printf("mmd: shard %d/%d listening on %s (replication %d, shard beat %v)",
			*shardIx, len(peerList), srv.Addr(), *rep, *beatIv)
	} else {
		log.Printf("mmd: metadata manager listening on %s (%d shard(s), replication %d)", srv.Addr(), *shards, *rep)
	}
	var monSrv *http.Server
	if *monAddr != "" {
		var bound string
		monSrv, bound, err = monitor.Serve(*monAddr, monitor.NewMMHandler(mapper, reg, tracer))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("mmd: stats at http://%s/stats, metrics at http://%s/metrics, traces at http://%s/traces", bound, bound, bound)
	}
	var dbgSrv *http.Server
	if *dbgAddr != "" {
		var bound string
		dbgSrv, bound, err = monitor.Serve(*dbgAddr, monitor.NewDebugHandler(tracer))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmd: %v\n", err)
			os.Exit(1)
		}
		log.Printf("mmd: debug at http://%s/traces and http://%s/debug/pprof/", bound, bound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("mmd: shutting down")
	if stopBeats != nil {
		stopBeats()
	}
	if shard != nil {
		shard.ClosePeers()
	}
	if err := monitor.Shutdown(monSrv, shutdownTimeout); err != nil {
		log.Printf("mmd: monitor shutdown: %v", err)
	}
	if err := monitor.Shutdown(dbgSrv, shutdownTimeout); err != nil {
		log.Printf("mmd: debug shutdown: %v", err)
	}
	srv.Close()
}
