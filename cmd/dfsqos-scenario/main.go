// Command dfsqos-scenario runs the named workload scenarios — Zipfian
// hot-file skew, flash-crowd bursts, diurnal tides, mixed operation
// storms — through the discrete-event cluster at up to 10⁵–10⁶ simulated
// clients plus a scaled-down live-TCP slice, and gates each run on its
// declarative SLO. The report is the BENCH_7.json scenarios block; any
// SLO violation makes the command exit non-zero, which is how
// scripts/scenarios.sh and the CI scenarios job fail a regression.
//
//	dfsqos-scenario -list
//	dfsqos-scenario -o BENCH_7.json
//	dfsqos-scenario -scenario flash-crowd -short -seed 7 -no-live
package main

import (
	"flag"
	"fmt"
	"os"

	"dfsqos/internal/scenario"
)

func main() {
	var (
		name   = flag.String("scenario", "", "run only this scenario (default: all builtin)")
		list   = flag.Bool("list", false, "list builtin scenarios and exit")
		short  = flag.Bool("short", false, "run the reduced-scale CI shape")
		seed   = flag.Uint64("seed", 1, "master seed for every stream in the run")
		out    = flag.String("o", "", "write the JSON report here (default: stdout only)")
		noLive = flag.Bool("no-live", false, "skip the live-TCP slices")
		quiet  = flag.Bool("quiet", false, "suppress progress lines")
	)
	flag.Parse()

	specs := scenario.Builtin()
	if *list {
		for _, s := range specs {
			fmt.Printf("%-16s %s\n", s.Name, s.Description)
		}
		return
	}
	if *name != "" {
		spec, err := scenario.Find(*name)
		if err != nil {
			fail(err)
		}
		specs = []scenario.Spec{spec}
	}

	opts := scenario.Options{Short: *short, Seed: *seed, SkipLive: *noLive}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	report, err := scenario.RunAll(specs, opts)
	if err != nil {
		fail(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := report.Write(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	} else if err := report.Write(os.Stdout); err != nil {
		fail(err)
	}

	for _, res := range report.Scenarios {
		status := "pass"
		if !res.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(os.Stderr, "%-16s %s  %d requests, fail rate %.4f, utilization %.3f\n",
			res.Name, status, res.Requests, res.FailRate, res.Utilization)
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}
	if !report.Pass {
		fmt.Fprintf(os.Stderr, "dfsqos-scenario: %d SLO violation(s)\n", report.Violations)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dfsqos-scenario:", err)
	os.Exit(1)
}
