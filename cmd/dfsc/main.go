// Command dfsc runs a DFS client — the Requester role of the ECNP model —
// against a live deployment (mmd + rmd daemons). It issues popularity-drawn
// file accesses through the full three-phase flow (MM query, CFP fan-out
// and bid selection, QoS-assured open), optionally streams the file bytes
// from the serving RM, and prints per-request outcomes plus a summary.
//
//	dfsc -mm 127.0.0.1:7000 -policy "(1,0,0)" -scenario firm -n 20 -read
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"dfsqos/internal/catalog"
	"dfsqos/internal/cluster"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/monitor"
	"dfsqos/internal/qos"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/telemetry"
	"dfsqos/internal/trace"
	"dfsqos/internal/transport"
	"dfsqos/internal/wire"
)

func main() {
	var (
		mmAddr   = flag.String("mm", "127.0.0.1:7000", "metadata manager address; comma-separated ring-index-aligned list for a shard group")
		mmRep    = flag.Int("mm-replication", 1, "owner shards per file in the MM shard group (must match mmd -replication)")
		metaTTL  = flag.Duration("meta-ttl", 0, "metadata lease TTL: cached lookup results skip the MM until they expire (0 disables the lease cache)")
		policy   = flag.String("policy", "(1,0,0)", "resource selection policy (α,β,γ) or (α,β,γ,δ) with the weighted-fairness term")
		scenario = flag.String("scenario", "firm", "allocation scenario: soft or firm")
		tenantID = flag.Int("tenant", 0, "tenant identity stamped on every request (0 = untenanted); quota'd RMs charge admissions to it")
		n        = flag.Int("n", 10, "number of file accesses to issue")
		read     = flag.Bool("read", false, "stream each admitted file's bytes from the serving RM")
		seed     = flag.Uint64("seed", 1, "deployment master seed (must match rmd)")
		numRMs   = flag.Int("num-rms", 16, "total RMs in the deployment")
		degree   = flag.Int("degree", 3, "static replica degree")
		files    = flag.Int("files", 1000, "catalog size")
		gapMS    = flag.Int("gap", 200, "milliseconds between requests")
		scale    = flag.Float64("scale", 1, "virtual seconds per wall second")
		negTO    = flag.Duration("negotiation-timeout", 2*time.Second, "deadline for collecting CFP bids; stalled RMs degrade to last-ranked zero bids")
		maxFO    = flag.Int("max-failovers", 2, "replicas a -read may fail over to after its serving RM dies mid-stream")
		stripeW  = flag.Int("stripe-width", 1, "replicas a -read stripes byte ranges across (1 = sequential single-RM read)")
		hedgeAft = flag.Duration("hedge-after", 0, "re-issue a lagging stripe range to another lane after this long (0 disables hedging)")
		monAddr  = flag.String("monitor", "", "HTTP stats/metrics address (e.g. 127.0.0.1:0); empty disables")
		dbgAddr  = flag.String("debug-addr", "", "standalone debug HTTP address (/traces + pprof); empty serves them on -monitor only")
		traceN   = flag.Int("trace-ring", 4096, "span ring capacity for request tracing (rounded up to a power of two)")
		sample   = flag.Float64("trace-sample", 1, "fraction of requests to trace (0 disables, 1 traces all)")
		tcfg     = transport.RegisterFlags(flag.CommandLine)
	)
	flag.Parse()

	pol, err := selection.ParsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	if *tenantID < 0 {
		fail(fmt.Errorf("negative -tenant %d", *tenantID))
	}
	// The tenant travels twice: in the ECNP control payloads (CFP, open,
	// store) and stamped on every dialed connection's wire frames, so
	// data-plane chunks are attributable too.
	tcfg.Tenant = ids.TenantID(*tenantID)
	scen, err := qos.Parse(*scenario)
	if err != nil {
		fail(err)
	}
	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = *files
	cat, _, err := cluster.SeededCorpus(*seed, catCfg, *numRMs, *degree)
	if err != nil {
		fail(err)
	}

	// One registry joins the requester's transport and negotiation
	// telemetry on a single /metrics page.
	reg := telemetry.NewRegistry()
	tcfg.Metrics = transport.NewMetrics(reg)
	wire.RegisterCodecMetrics(reg)
	tracer := trace.New(trace.Options{
		Actor:    "dfsc1",
		RingSize: *traceN,
		Registry: reg,
		// The sampling decision is a stateless hash of the request ID, so
		// it is reproducible across runs and propagates implicitly: an
		// unsampled request writes untraced frames and no daemon opens
		// spans for it.
		Sampler: func(r ids.RequestID) bool {
			if *sample >= 1 {
				return true
			}
			if *sample <= 0 {
				return false
			}
			x := uint64(r) * 0x9e3779b97f4a7c15
			x ^= x >> 32
			return float64(x%(1<<20))/(1<<20) < *sample
		},
	})

	mapper, err := dialMapper(*mmAddr, *mmRep, *tcfg, reg)
	if err != nil {
		fail(err)
	}
	defer mapper.Close()
	mapper.SetLogger(log.Printf)
	dir := live.NewDirectoryConfig(mapper, *tcfg)
	defer dir.Close()
	dir.SetLogger(log.Printf)
	sched := live.NewWallScheduler(*scale)
	defer sched.Stop()

	client, err := dfsc.New(dfsc.Options{
		ID:        1,
		Mapper:    mapper,
		Directory: dir,
		Scheduler: sched,
		Catalog:   cat,
		Policy:    pol,
		Scenario:  scen,
		Tenant:    ids.TenantID(*tenantID),
		Rand:      rng.New(*seed).Split("dfsc-cli"),
		// The live control path fans CFPs out concurrently, bounded by
		// the negotiation deadline: one stalled RM costs at most -negotiation-timeout,
		// not its share of a serial scan.
		Fanout:  dfsc.Fanout{Concurrent: true, BidTimeout: *negTO},
		MetaTTL: *metaTTL,
		Metrics: dfsc.NewMetrics(reg),
		Tracer:  tracer,
	})
	if err != nil {
		fail(err)
	}
	if *monAddr != "" {
		monSrv, bound, err := monitor.Serve(*monAddr, monitor.NewDFSCHandler(client, reg, tracer))
		if err != nil {
			fail(err)
		}
		defer monitor.Shutdown(monSrv, 3*time.Second)
		log.Printf("dfsc: stats at http://%s/stats, metrics at http://%s/metrics, traces at http://%s/traces", bound, bound, bound)
	}
	if *dbgAddr != "" {
		dbgSrv, bound, err := monitor.Serve(*dbgAddr, monitor.NewDebugHandler(tracer))
		if err != nil {
			fail(err)
		}
		defer monitor.Shutdown(dbgSrv, 3*time.Second)
		log.Printf("dfsc: debug at http://%s/traces and http://%s/debug/pprof/", bound, bound)
	}

	picker := rng.New(uint64(time.Now().UnixNano()) | 1)
	var ok, failed int
	for i := 0; i < *n; i++ {
		file := cat.SamplePopular(picker)
		meta := cat.File(file)
		if *read {
			// Streamed access with self-healing: reservations ride the
			// stream (chunks renew their leases), a replica dying mid-range
			// fails over to the next-best bidder — bounded by -max-failovers
			// — and -stripe-width > 1 spreads byte ranges across that many
			// lanes at once, with -hedge-after re-issuing lagging ranges.
			start := time.Now()
			res, err := client.ReadStriped(dir, file, io.Discard, dfsc.StripeConfig{
				Width:        *stripeW,
				HedgeAfter:   *hedgeAft,
				MaxFailovers: *maxFO,
			})
			if err != nil {
				failed++
				log.Printf("dfsc: %s (%v, %.1fs) FAILED: %v", meta.Name, meta.Bitrate, meta.DurationSec, err)
			} else {
				ok++
				secs := time.Since(start).Seconds()
				log.Printf("dfsc: %s (%v, %.1fs) -> %v: %d bytes in %.2fs (%.2f MB/s, %d segment(s), %d failover(s), %d/%d hedge(s) won, checksum ok)",
					meta.Name, meta.Bitrate, meta.DurationSec, res.RMs, res.Bytes, secs,
					float64(res.Bytes)/secs/1e6, len(res.Segments), res.Failovers, res.HedgesWon, res.Hedges)
			}
			time.Sleep(time.Duration(*gapMS) * time.Millisecond)
			continue
		}
		out := client.Access(file)
		if !out.OK {
			failed++
			log.Printf("dfsc: %s (%v, %.1fs) FAILED: %s", meta.Name, meta.Bitrate, meta.DurationSec, out.Reason)
		} else {
			ok++
			log.Printf("dfsc: %s (%v, %.1fs) -> %v", meta.Name, meta.Bitrate, meta.DurationSec, out.RM)
		}
		time.Sleep(time.Duration(*gapMS) * time.Millisecond)
	}
	st := client.Stats()
	fmt.Printf("dfsc: %d requests, %d admitted, %d failed (%s %.3f%%)\n",
		st.Requests, ok, failed, scen.Criterion(), 100*float64(st.Failed)/float64(max(1, st.Requests)))
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// mapperStub is the client surface dfsc needs from its metadata plane;
// both the single-MM stub and the shard-group mapper provide it.
type mapperStub interface {
	ecnp.Mapper
	SetLogger(func(string, ...any))
	Close() error
}

// dialMapper connects the metadata stub: a plain MM client for one
// address, a successor-failover ShardMapper for a comma-separated shard
// group.
func dialMapper(spec string, rep int, tcfg transport.Config, reg *telemetry.Registry) (mapperStub, error) {
	addrs := strings.Split(spec, ",")
	if len(addrs) == 1 {
		return live.DialMMConfig(addrs[0], tcfg)
	}
	sm, err := live.DialShardMapper(addrs, rep, tcfg)
	if err != nil {
		return nil, err
	}
	sm.SetMetrics(live.NewShardMapperMetrics(reg))
	return sm, nil
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dfsc: %v\n", err)
	os.Exit(1)
}
