module dfsqos

go 1.22
