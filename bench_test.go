// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per exhibit, at reduced Quick scale so the full suite runs
// in seconds), plus ablation benches for the design choices DESIGN.md
// calls out and micro-benchmarks of the hot paths.
//
// Regenerate the full-size exhibits with:  go run ./cmd/qosbench -exp all
package dfsqos

import (
	"fmt"
	"testing"

	"net"

	"dfsqos/internal/ecnp"
	"dfsqos/internal/experiments"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/ledger"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/simtime"
	"dfsqos/internal/wire"
)

// benchOptions is the reduced scale shared by the exhibit benches.
func benchOptions() ExperimentOptions {
	o := experiments.Quick()
	o.Users = []int{64, 192}
	o.StandardUsers = 192
	o.HorizonSec = 900
	return o
}

func runExhibit(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Cells)+len(res.Series) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

// BenchmarkTable1 regenerates Table I (over-allocate ratio, soft real-time,
// policy × user sweep, static replication).
func BenchmarkTable1(b *testing.B) { runExhibit(b, "table1") }

// BenchmarkTable2 regenerates Table II (per-RM over-allocate ratio).
func BenchmarkTable2(b *testing.B) { runExhibit(b, "table2") }

// BenchmarkTable3 regenerates Table III (fail rate, firm real-time).
func BenchmarkTable3(b *testing.B) { runExhibit(b, "table3") }

// BenchmarkTable4 regenerates Table IV (over-allocate ratio with dynamic
// replication, soft real-time).
func BenchmarkTable4(b *testing.B) { runExhibit(b, "table4") }

// BenchmarkTable5 regenerates Table V (fail rate with dynamic replication).
func BenchmarkTable5(b *testing.B) { runExhibit(b, "table5") }

// BenchmarkTable6 regenerates Table VI (destination selection, soft).
func BenchmarkTable6(b *testing.B) { runExhibit(b, "table6") }

// BenchmarkTable7 regenerates Table VII (destination selection, firm).
func BenchmarkTable7(b *testing.B) { runExhibit(b, "table7") }

// BenchmarkFig4 regenerates Fig. 4 (over-allocate situation over time).
func BenchmarkFig4(b *testing.B) { runExhibit(b, "fig4") }

// BenchmarkFig5 regenerates Fig. 5 (aggregated utilization, large vs small
// RMs, firm real-time).
func BenchmarkFig5(b *testing.B) { runExhibit(b, "fig5") }

// BenchmarkFig6 regenerates Fig. 6 (RM1/RM2 utilization under the four
// replication strategies).
func BenchmarkFig6(b *testing.B) { runExhibit(b, "fig6") }

// BenchmarkFig7 regenerates Fig. 7 (per-RM over-allocate, static vs
// Rep(1,3)).
func BenchmarkFig7(b *testing.B) { runExhibit(b, "fig7") }

// benchRun executes one cluster configuration per iteration.
func benchRun(b *testing.B, mutate func(*Config)) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.Workload.NumUsers = 192
	cfg.Workload.HorizonSec = 900
	cfg.Catalog.NumFiles = 400
	if mutate != nil {
		mutate(&cfg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSoftStatic measures a full soft-RT static-replication run.
func BenchmarkSimSoftStatic(b *testing.B) { benchRun(b, nil) }

// BenchmarkSimFirmRep13 measures a firm-RT Rep(1,3) run (replication on).
func BenchmarkSimFirmRep13(b *testing.B) {
	benchRun(b, func(cfg *Config) {
		cfg.Scenario = qos.Firm
		cfg.Replication = ReplicationDefaults(Rep(1, 3))
	})
}

// Ablation benches: each sweeps one design parameter DESIGN.md §6 calls
// out and reports the resulting QoS metric, so a regression in the
// mechanism shows up as a metric shift, not just a time shift.

// BenchmarkAblationTriggerThreshold sweeps B_TH.
func BenchmarkAblationTriggerThreshold(b *testing.B) {
	for _, bth := range []float64{0.10, 0.20, 0.40} {
		b.Run(fmt.Sprintf("BTH=%.0f%%", bth*100), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Replication.TriggerFrac = bth
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.FailRate
			}
			b.ReportMetric(last*100, "failrate_%")
		})
	}
}

// BenchmarkAblationCooldown sweeps the 60 s replication cooldown.
func BenchmarkAblationCooldown(b *testing.B) {
	for _, cd := range []float64{5, 60, 300} {
		b.Run(fmt.Sprintf("cooldown=%.0fs", cd), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Replication.CooldownSec = cd
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.FailRate
			}
			b.ReportMetric(last*100, "failrate_%")
		})
	}
}

// BenchmarkAblationReplicationSpeed sweeps the 1.8 Mbit/s transfer rate.
func BenchmarkAblationReplicationSpeed(b *testing.B) {
	for _, mbps := range []float64{0.9, 1.8, 7.2} {
		b.Run(fmt.Sprintf("speed=%.1fMbps", mbps), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Replication.Speed = Mbps(mbps)
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.FailRate
			}
			b.ReportMetric(last*100, "failrate_%")
		})
	}
}

// BenchmarkAblationChargeTransfers quantifies the cost of charging
// replication traffic against the QoS pool instead of the paper's B_REV
// reserve.
func BenchmarkAblationChargeTransfers(b *testing.B) {
	for _, charge := range []bool{false, true} {
		b.Run(fmt.Sprintf("charge=%v", charge), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Replication.ChargeTransfers = charge
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.FailRate
			}
			b.ReportMetric(last*100, "failrate_%")
		})
	}
}

// BenchmarkAblationZipfSkew sweeps the popularity skew of the catalog.
func BenchmarkAblationZipfSkew(b *testing.B) {
	for _, skew := range []float64{0.7, 0.95, 1.2} {
		b.Run(fmt.Sprintf("skew=%.2f", skew), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := ablationBase()
				cfg.Catalog.ZipfSkew = skew
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.FailRate
			}
			b.ReportMetric(last*100, "failrate_%")
		})
	}
}

func ablationBase() Config {
	cfg := DefaultConfig()
	cfg.Scenario = qos.Firm
	cfg.Policy = PolicyRemOnly
	cfg.Replication = ReplicationDefaults(Rep(1, 3))
	cfg.Workload.NumUsers = 224
	cfg.Workload.HorizonSec = 1200
	cfg.Catalog.NumFiles = 400
	return cfg
}

// Micro-benchmarks of the hot paths.

// BenchmarkBidScore measures one bid evaluation.
func BenchmarkBidScore(b *testing.B) {
	bid := selection.Bid{RM: 1, Rem: Mbps(10), Trend: 12345, OccBias: 0.4, Req: Mbps(2)}
	pol := selection.Full
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += pol.Score(bid)
	}
	_ = sink
}

// BenchmarkSelect measures a full 3-bid selection round.
func BenchmarkSelect(b *testing.B) {
	bids := []selection.Bid{
		{RM: 1, Rem: Mbps(10)},
		{RM: 2, Rem: Mbps(12)},
		{RM: 3, Rem: Mbps(8)},
	}
	src := benchRand()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		selection.Select(selection.RemOnly, bids, src)
	}
}

// BenchmarkDestinationOrder measures destination sampling over 14
// candidates for each strategy.
func BenchmarkDestinationOrder(b *testing.B) {
	infos := benchInfos(14)
	src := benchRand()
	for _, d := range []DestStrategy{DestRandom, DestLBF, DestWeighted} {
		b.Run(d.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Order(infos, src)
			}
		})
	}
}

// BenchmarkLedger measures one allocate/release pair with integration.
func BenchmarkLedger(b *testing.B) {
	l := ledger.New(Mbps(18), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := simtime.Time(i)
		l.Allocate(at, Mbps(2))
		l.Release(at+0.5, Mbps(2))
	}
}

// BenchmarkHistoryRecordTrend measures the two-queue recorder's hot path.
func BenchmarkHistoryRecordTrend(b *testing.B) {
	tq := history.MustNew(history.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := simtime.Time(i)
		tq.Record(at, 50_000_000)
		_ = tq.Trend(at, Mbps(10))
	}
}

// BenchmarkWireRoundTrip measures one framed CFP/bid exchange over an
// in-memory pipe (the control-plane unit of the live deployment).
func BenchmarkWireRoundTrip(b *testing.B) {
	client, server := net.Pipe()
	cw := wire.NewConn(client)
	sw := wire.NewConn(server)
	go func() {
		for {
			msg, err := sw.Read()
			if err != nil {
				return
			}
			if err := sw.Write(wire.KindBid, selection.Bid{RM: 1, Rem: Mbps(10)}); err != nil {
				return
			}
			_ = msg
		}
	}()
	defer client.Close()
	defer server.Close()
	cfp := ecnp.CFP{Request: 1, File: 2, Bitrate: Mbps(2), DurationSec: 300}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cw.Call(wire.KindCFP, cfp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterBuild measures wiring the full 16-RM deployment
// (catalog, placement, registration) without running it.
func BenchmarkClusterBuild(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workload.NumUsers = 64
	cfg.Workload.HorizonSec = 60
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRand() *rng.Source { return rng.New(1) }

func benchInfos(n int) []ecnp.RMInfo {
	infos := make([]ecnp.RMInfo, n)
	for i := range infos {
		infos[i] = ecnp.RMInfo{ID: ids.RMID(i + 1), Capacity: Mbps(float64(18 + i))}
	}
	return infos
}

var _ = replication.Baseline // keep the replication import tied to the ablations above
