// Hotspot: watch dynamic replication dissolve a data-access hotspot.
//
// A hotspot means "the bandwidth utilizations of some hosts are overloaded
// while others still have a lot of available bandwidth" (paper §V). This
// example runs the 256-user workload twice — static replicas vs Rep(1,3) —
// and draws ASCII utilization timelines for the large-bandwidth RM1 and the
// small-bandwidth RM2, the pair the paper plots in Fig. 6.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"strings"

	"dfsqos"
	"dfsqos/internal/ids"
	"dfsqos/internal/metrics"
)

func main() {
	fmt.Println("Hotspot dissolution: static replicas vs Rep(1,3), policy (1,0,0)")
	for _, strat := range []dfsqos.Strategy{dfsqos.StaticReplication(), dfsqos.Rep(1, 3)} {
		cfg := dfsqos.DefaultConfig()
		cfg.Workload.NumUsers = 256
		cfg.Workload.HorizonSec = 3600
		cfg.Policy = dfsqos.PolicyRemOnly
		cfg.Scenario = dfsqos.Soft
		cfg.Replication = dfsqos.ReplicationDefaults(strat)
		cfg.SampleEverySec = 30
		res, err := dfsqos.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== %s (aggregate over-allocate %.3f%%, %d replications, %d migrations)\n",
			strat, 100*res.OverAllocate, res.Replications, res.Migrations)
		for _, id := range []ids.RMID{1, 2} {
			var capBW float64
			for _, rm := range res.PerRM {
				if rm.ID == id {
					capBW = float64(rm.Capacity)
				}
			}
			drawTimeline(id, res.Utilization[id], capBW)
		}
	}
	fmt.Println("\nUnder static replicas RM2 pins at (or beyond) its 19 Mbit/s while")
	fmt.Println("RM1 idles; Rep(1,3) migrates the busiest files onto RM1's headroom.")
}

// drawTimeline renders one RM's allocated bandwidth as a bar per sample
// bucket, with '#' marking utilization and '!' marking over-allocation.
func drawTimeline(id ids.RMID, s *metrics.Series, capacity float64) {
	fmt.Printf("%v (max %.1f Mbit/s):\n", id, capacity*8/1e6)
	pts := s.Downsample(s.Len() / 24)
	for _, p := range pts {
		frac := p.Value / capacity
		width := int(frac * 40)
		over := ""
		if width > 40 {
			over = strings.Repeat("!", min(width-40, 12))
			width = 40
		}
		fmt.Printf("  %6.0fs |%-40s%s| %5.1f%%\n",
			p.At.Seconds(), strings.Repeat("#", width), over, 100*frac)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
