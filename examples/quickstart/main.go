// Quickstart: build the paper's standard cluster (16 heterogeneous RMs,
// 1000 videos × 3 replicas), run a 30-minute multi-user workload under the
// (1,0,0) selection policy in both allocation scenarios, and print the
// storage-QoS metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dfsqos"
	"dfsqos/internal/qos"
)

func main() {
	cfg := dfsqos.DefaultConfig()
	cfg.Workload.NumUsers = 256
	cfg.Workload.HorizonSec = 1800 // 30 simulated minutes
	cfg.Policy = dfsqos.PolicyRemOnly

	// Soft real-time: every request is admitted; the metric is how many
	// bytes were allocated beyond the disks' sustained bandwidth.
	cfg.Scenario = dfsqos.Soft
	soft, err := dfsqos.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Firm real-time: requests that no RM can fit are refused; the metric
	// is the fail rate.
	cfg.Scenario = dfsqos.Firm
	firm, err := dfsqos.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %d requests from %d users over %.0f s\n",
		soft.TotalRequests, cfg.Workload.NumUsers, cfg.Workload.HorizonSec)
	fmt.Printf("soft real-time  %-22s %6.3f%%\n", qos.Soft.Criterion(), 100*soft.OverAllocate)
	fmt.Printf("firm real-time  %-22s %6.3f%%\n", qos.Firm.Criterion(), 100*firm.FailRate)

	fmt.Println("\nper-RM accounting (soft run):")
	for _, rm := range soft.PerRM {
		fmt.Printf("  %-4v cap %-14v assigned %8.1f MB  over-allocate %6.3f%%\n",
			rm.ID, rm.Capacity, rm.Snap.AssignedBytes/1e6, 100*rm.OverAllocateRatio())
	}
}
