// Videostream: the paper's motivating scenario — concurrent video-streaming
// users with fixed-bitrate QoS needs — comparing random selection against
// the (1,0,0) policy, and static against dynamic replication, on one page.
//
// This is a condensed re-run of Tables I/III/V: watch who wins and by what
// factor at each load level.
//
//	go run ./examples/videostream
package main

import (
	"fmt"
	"log"

	"dfsqos"
)

func main() {
	fmt.Println("Video streaming under storage QoS: policy and replication comparison")
	fmt.Println()

	// Sweep the user count: over-allocation appears once aggregate demand
	// approaches the 512 Mbit/s the 16 disks can sustain.
	fmt.Println("soft real-time over-allocate ratio (static replication)")
	fmt.Printf("%8s  %10s  %10s\n", "users", "(0,0,0)", "(1,0,0)")
	for _, users := range []int{64, 128, 192, 256} {
		random := run(users, dfsqos.PolicyRandom, dfsqos.Soft, dfsqos.StaticReplication())
		rem := run(users, dfsqos.PolicyRemOnly, dfsqos.Soft, dfsqos.StaticReplication())
		fmt.Printf("%8d  %9.3f%%  %9.3f%%\n", users, 100*random.OverAllocate, 100*rem.OverAllocate)
	}

	fmt.Println()
	fmt.Println("firm real-time fail rate at 256 users")
	fmt.Printf("%-12s  %10s  %10s\n", "replication", "(0,0,0)", "(1,0,0)")
	for _, strat := range []dfsqos.Strategy{
		dfsqos.StaticReplication(),
		dfsqos.BaselineReplication(),
		dfsqos.Rep(1, 8),
		dfsqos.Rep(1, 3),
	} {
		random := run(256, dfsqos.PolicyRandom, dfsqos.Firm, strat)
		rem := run(256, dfsqos.PolicyRemOnly, dfsqos.Firm, strat)
		fmt.Printf("%-12s  %9.3f%%  %9.3f%%\n", strat, 100*random.FailRate, 100*rem.FailRate)
	}

	fmt.Println()
	fmt.Println("The paper's conclusion reproduces: (1,0,0) beats random selection,")
	fmt.Println("and dynamic replication beats static replicas; Rep(1,3) stays close")
	fmt.Println("to Rep(1,8) while never storing more than three copies of a file.")
}

func run(users int, pol dfsqos.Policy, scen dfsqos.Scenario, strat dfsqos.Strategy) *dfsqos.Results {
	cfg := dfsqos.DefaultConfig()
	cfg.Workload.NumUsers = users
	cfg.Workload.HorizonSec = 3600
	cfg.Policy = pol
	cfg.Scenario = scen
	cfg.Replication = dfsqos.ReplicationDefaults(strat)
	res, err := dfsqos.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
