// Deployment: plan the paper's physical testbed — 5 machines, 25 Xen VMs —
// validate the disk-bandwidth dispatch, print the cgroups-blkio throttle
// plan each host would program, and then run the standard workload on the
// resulting RM topology to confirm the plan carries the paper's QoS
// behaviour.
//
//	go run ./examples/deployment
package main

import (
	"fmt"
	"log"

	"dfsqos"
	"dfsqos/internal/host"
)

func main() {
	layout := host.PaperLayout()
	if err := layout.Validate(); err != nil {
		log.Fatalf("layout invalid: %v", err)
	}

	fmt.Println("Physical layout (paper §VI-A: 5 machines, 128 Mbit/s disk each):")
	for _, h := range layout.Hosts {
		fmt.Printf("  host%d  disk %v  dispatched %v\n", h.ID, h.DiskBandwidth, h.Dispatched())
		for _, vm := range h.VMs {
			share := "-"
			if vm.DiskShare > 0 {
				share = vm.DiskShare.String()
			}
			fmt.Printf("    %-6s %-5s share %s\n", vm.Name(), vm.Kind, share)
		}
	}

	fmt.Println("\nblkio.throttle plan (what each host programs per RM VM):")
	for _, p := range layout.ThrottlePlans() {
		fmt.Printf("  host%d %-8s read_bps=%-10.0f write_bps=%.0f\n",
			p.Host, p.Group, float64(p.ReadBps), float64(p.WriteBps))
	}

	// Drive the simulation directly from the physical plan.
	caps, err := layout.RMCapacities()
	if err != nil {
		log.Fatal(err)
	}
	cfg := dfsqos.DefaultConfig()
	cfg.RMCapacities = caps
	cfg.Workload.NumUsers = 192
	cfg.Workload.HorizonSec = 1800
	cfg.Scenario = dfsqos.Firm
	cfg.Replication = dfsqos.ReplicationDefaults(dfsqos.Rep(1, 3))
	res, err := dfsqos.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload on this plan: %d requests, fail rate %.3f%%, %d replications\n",
		res.TotalRequests, 100*res.FailRate, res.Replications)
	for _, rm := range res.PerRM {
		fmt.Printf("  %-4v host%d  assigned %8.1f MB\n",
			rm.ID, layout.HostOf(rm.ID), rm.Snap.AssignedBytes/1e6)
	}
}
