// Livecluster: the full distributed file system over real TCP on
// localhost — a Metadata Manager server, three Resource Manager servers
// with blkio-throttled virtual disks, and a FUSE-style mount whose
// callbacks drive the ECNP protocol over the network:
//
//	readdir → MM resource query
//	open    → CFP fan-out, bid scoring, bandwidth reservation
//	read    → throttled data transfer from the serving RM
//	release → reservation returned
//
//	go run ./examples/livecluster
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"time"

	"dfsqos/internal/blkio"
	"dfsqos/internal/catalog"
	"dfsqos/internal/dfsc"
	"dfsqos/internal/ecnp"
	"dfsqos/internal/fsapi"
	"dfsqos/internal/history"
	"dfsqos/internal/ids"
	"dfsqos/internal/live"
	"dfsqos/internal/mm"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/rm"
	"dfsqos/internal/rng"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
	"dfsqos/internal/vdisk"
)

func main() {
	// A small catalog of short clips keeps the demo fast.
	catCfg := catalog.DefaultConfig()
	catCfg.NumFiles = 6
	catCfg.MeanDurationSec = 8
	catCfg.MinDurationSec = 4
	catCfg.MaxDurationSec = 15
	cat, err := catalog.Generate(catCfg, rng.New(7))
	check(err)

	// 1. The MM starts first (paper Fig. 2).
	mmSrv, err := live.NewMMServer(mm.New(), "127.0.0.1:0")
	check(err)
	defer mmSrv.Close()
	fmt.Printf("metadata manager on %s\n", mmSrv.Addr())

	// 2. Three RMs register, each with its own throttled virtual disk.
	sched := live.NewWallScheduler(50) // 50 virtual seconds per wall second
	defer sched.Stop()
	master := rng.New(11)
	caps := []units.BytesPerSec{units.Mbps(64), units.Mbps(24), units.Mbps(24)}
	var servers []*live.RMServer
	for i, capBW := range caps {
		id := ids.RMID(i + 1)
		ctrl := blkio.NewController()
		disk, err := vdiskFor(ctrl, id, capBW)
		check(err)
		files := make(map[ids.FileID]rm.FileMeta)
		for _, f := range cat.Files() {
			// Every RM holds every clip in this demo.
			files[f.ID] = rm.FileMeta{Bitrate: f.Bitrate, Size: f.Size, DurationSec: f.DurationSec}
			check(disk.Provision(live.FileName(f.ID), f.Size))
		}
		mapper, err := live.DialMM(mmSrv.Addr())
		check(err)
		node, err := rm.New(rm.Options{
			Info:        ecnp.RMInfo{ID: id, Capacity: capBW, StorageBytes: 4 * units.GB},
			Scheduler:   sched,
			Mapper:      mapper,
			History:     history.DefaultConfig(),
			Replication: replication.DefaultConfig(replication.Static()),
			Rand:        master.Split(id.String()),
			Files:       files,
		})
		check(err)
		srv, err := live.NewRMServer(node, disk, "127.0.0.1:0")
		check(err)
		defer srv.Close()
		info := node.Info()
		info.Addr = srv.Addr()
		fileIDs := make([]ids.FileID, 0, len(files))
		for f := range files {
			fileIDs = append(fileIDs, f)
		}
		check(mapper.RegisterRM(info, fileIDs))
		node.SetDirectory(live.NewDirectory(mapper))
		servers = append(servers, srv)
		fmt.Printf("%v (%v) on %s\n", id, capBW, srv.Addr())
	}

	// 3. The DFSC launches last, mounted through the FUSE-style surface.
	mapper, err := live.DialMM(mmSrv.Addr())
	check(err)
	defer mapper.Close()
	dir := live.NewDirectory(mapper)
	defer dir.Close()
	client, err := dfsc.New(dfsc.Options{
		ID: 1, Mapper: mapper, Directory: dir, Scheduler: sched,
		Catalog: cat, Policy: selection.RemOnly, Scenario: qos.Firm,
		Rand: master.Split("client"),
	})
	check(err)
	mount, err := fsapi.NewMount(fsapi.Options{
		Client:       client,
		Catalog:      cat,
		Data:         &liveData{dir: dir},
		ReplicaCount: mapper.ReplicaCount,
	})
	check(err)
	defer mount.Destroy()

	names, err := mount.Readdir()
	check(err)
	fmt.Printf("\nreaddir: %d files\n", len(names))

	for _, name := range names[:3] {
		info, err := mount.Getattr(name)
		check(err)
		h, err := mount.Open(name)
		check(err)
		start := time.Now()
		var buf bytes.Buffer
		chunk := make([]byte, 128*1024)
		var off int64
		for {
			n, err := mount.Read(h, chunk, off)
			buf.Write(chunk[:n])
			off += int64(n)
			if err == io.EOF {
				break
			}
			check(err)
		}
		secs := time.Since(start).Seconds()
		check(mount.Release(h))
		fmt.Printf("open/read/release %s: %s in %.2fs (%.2f MB/s, %d replicas, bitrate %v)\n",
			name, info.Size, secs, float64(buf.Len())/secs/1e6, info.Replicas, info.Bitrate)
	}
	fmt.Println("\nall reservations returned; live cluster shutting down")
}

// liveData adapts the TCP data plane to the fsapi.DataPlane interface by
// fetching whole files once per (rm, file) pair and caching them.
type liveData struct {
	dir   *live.Directory
	cache map[string][]byte
}

func (d *liveData) ReadAt(rmID ids.RMID, file ids.FileID, p []byte, off int64) (int, error) {
	if d.cache == nil {
		d.cache = make(map[string][]byte)
	}
	key := fmt.Sprintf("%v/%v", rmID, file)
	data, ok := d.cache[key]
	if !ok {
		cli, found := d.dir.RMClient(rmID)
		if !found {
			return 0, fmt.Errorf("livecluster: %v unreachable", rmID)
		}
		var buf bytes.Buffer
		if _, err := cli.ReadFile(file, &buf); err != nil {
			return 0, err
		}
		data = buf.Bytes()
		d.cache[key] = data
	}
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	return n, nil
}

func vdiskFor(ctrl *blkio.Controller, id ids.RMID, capBW units.BytesPerSec) (*vdisk.Disk, error) {
	return vdisk.New(4*units.GB, ctrl, fmt.Sprintf("vm%d", id), capBW, capBW)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
