package dfsqos

import (
	"testing"

	"dfsqos/internal/replication"
)

// facadeConfig is a fast configuration for facade-level tests.
func facadeConfig() Config {
	cfg := DefaultConfig()
	cfg.Workload.NumUsers = 96
	cfg.Workload.HorizonSec = 900
	cfg.Catalog.NumFiles = 200
	return cfg
}

func TestRunThroughFacade(t *testing.T) {
	res, err := Run(facadeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRequests == 0 {
		t.Fatal("no requests ran")
	}
	if len(res.PerRM) != 16 {
		t.Fatalf("%d RMs, want the paper topology's 16", len(res.PerRM))
	}
}

func TestBuildThenRun(t *testing.T) {
	cl, err := Build(facadeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cl.Catalog().Len() != 200 {
		t.Fatalf("catalog size %d", cl.Catalog().Len())
	}
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperTopologyThroughFacade(t *testing.T) {
	caps := PaperTopology()
	if len(caps) != 16 || caps[0] != Mbps(128) || caps[8] != Mbps(128) {
		t.Fatalf("topology = %v", caps)
	}
}

func TestPolicyHelpers(t *testing.T) {
	p, err := ParsePolicy("(1,0,0)")
	if err != nil || p != PolicyRemOnly {
		t.Fatalf("ParsePolicy = (%v, %v)", p, err)
	}
	if !PolicyRandom.IsRandom() {
		t.Fatal("PolicyRandom not random")
	}
	for _, p := range []Policy{PolicyRemOcc, PolicyRemTrend, PolicyFull} {
		if p.IsRandom() {
			t.Fatalf("%v claims to be random", p)
		}
	}
}

func TestStrategyHelpers(t *testing.T) {
	if StaticReplication().Enabled {
		t.Fatal("static strategy enabled")
	}
	if got := BaselineReplication(); got != replication.Rep(3, 8) {
		t.Fatalf("baseline = %v", got)
	}
	rc := ReplicationDefaults(Rep(1, 3))
	if rc.TriggerFrac != 0.20 || rc.Speed != Mbps(1.8) {
		t.Fatalf("defaults = %+v", rc)
	}
}

func TestRunExperimentThroughFacade(t *testing.T) {
	opts := QuickScale()
	opts.Users = []int{64}
	opts.StandardUsers = 64
	opts.HorizonSec = 600
	res, err := RunExperiment("table1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "table1" || len(res.Cells) == 0 {
		t.Fatalf("experiment result %+v", res)
	}
	if _, err := RunExperiment("nope", opts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 11 {
		t.Fatalf("ExperimentIDs = %v", ExperimentIDs())
	}
}

func TestScenarioConstants(t *testing.T) {
	if Soft.IsFirm() || !Firm.IsFirm() {
		t.Fatal("scenario constants wrong")
	}
	if Soft.Criterion() == Firm.Criterion() {
		t.Fatal("criteria indistinct")
	}
}

func TestPaperScaleDefaults(t *testing.T) {
	o := PaperScale()
	if o.HorizonSec != 7200 || o.StandardUsers != 256 || len(o.Users) != 4 {
		t.Fatalf("paper scale = %+v", o)
	}
	q := QuickScale()
	if q.HorizonSec >= o.HorizonSec {
		t.Fatal("quick scale not smaller than paper scale")
	}
}
