package dfsqos_test

import (
	"fmt"

	"dfsqos"
)

// ExampleRun builds the paper's standard cluster at a reduced scale and
// reports both storage-QoS criteria. Runs are deterministic for a fixed
// Config.Seed.
func ExampleRun() {
	cfg := dfsqos.DefaultConfig()
	cfg.Workload.NumUsers = 64
	cfg.Workload.HorizonSec = 600
	cfg.Catalog.NumFiles = 100
	cfg.Policy = dfsqos.PolicyRemOnly

	cfg.Scenario = dfsqos.Soft
	soft, err := dfsqos.Run(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Scenario = dfsqos.Firm
	firm, err := dfsqos.Run(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("requests: %d\n", soft.TotalRequests)
	fmt.Printf("over-allocate: %.3f%%\n", 100*soft.OverAllocate)
	fmt.Printf("fail rate: %.3f%%\n", 100*firm.FailRate)
	// Output:
	// requests: 121
	// over-allocate: 0.000%
	// fail rate: 0.000%
}

// ExampleParsePolicy shows the paper's policy notation.
func ExampleParsePolicy() {
	p, err := dfsqos.ParsePolicy("(1,0,0)")
	if err != nil {
		panic(err)
	}
	fmt.Println(p, p.IsRandom())
	fmt.Println(dfsqos.PolicyRandom, dfsqos.PolicyRandom.IsRandom())
	// Output:
	// (1,0,0) false
	// (0,0,0) true
}

// ExampleRep shows the replication strategy notation and the paper's
// copy-count rule at the replica bound (migration).
func ExampleRep() {
	rep13 := dfsqos.Rep(1, 3)
	copies, migrate := rep13.Plan(3)
	fmt.Printf("%v at 3 replicas: copy %d, migrate %v\n", rep13, copies, migrate)

	baseline := dfsqos.BaselineReplication()
	copies, migrate = baseline.Plan(3)
	fmt.Printf("%v at 3 replicas: copy %d, migrate %v\n", baseline, copies, migrate)
	// Output:
	// Rep(1,3) at 3 replicas: copy 1, migrate true
	// Rep(3,8) at 3 replicas: copy 3, migrate false
}
