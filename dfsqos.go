// Package dfsqos is a distributed file system with storage-QoS provision
// for clouds — a from-scratch Go reproduction of Wang, Yeh and Tseng,
// "Provision of Storage QoS in Distributed File Systems for Clouds"
// (ICPP 2012).
//
// The system allocates assured disk bandwidth to every admitted data
// transfer while maximizing aggregate disk-bandwidth utilization, using
// three cooperating mechanisms:
//
//   - an ECNP-based DFS (DFS Client / Resource Manager / Metadata Manager
//     mapped onto the Requester / Storage Provider / Mapper roles),
//   - resource-selection policies scoring each RM's bid as
//     α·B_rem + β·Trend − γ·OccBias·B_req,
//   - dynamic replication Rep(N_REP, N_MAXR) that copies or migrates the
//     busiest files away from RMs whose remaining bandwidth falls below
//     B_TH, with Random / LBF / Weighted destination selection.
//
// This facade re-exports the stable surface of the internal packages:
//
//   - Cluster simulation (the paper's testbed substitute): Config,
//     Build/Run, the 16-RM paper topology.
//   - Policies and strategies: the (α,β,γ) triple, Rep(n,m), destination
//     strategies, QoS scenarios.
//   - Experiments: every table and figure of the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results next to the paper's numbers. The cmd/ directory holds the
// runnable daemons (mmd, rmd, dfsc) and the qosbench experiment driver;
// examples/ holds runnable walkthroughs.
package dfsqos

import (
	"dfsqos/internal/cluster"
	"dfsqos/internal/experiments"
	"dfsqos/internal/qos"
	"dfsqos/internal/replication"
	"dfsqos/internal/selection"
	"dfsqos/internal/units"
)

// Config describes one simulated deployment and workload; see
// DefaultConfig for the paper's standard setup.
type Config = cluster.Config

// Results aggregates a run's outcome: fail rate, over-allocate ratio,
// per-RM accounting and optional utilization time series.
type Results = cluster.Results

// Cluster is a fully wired simulated deployment.
type Cluster = cluster.Cluster

// Policy is the (α, β, γ) resource-selection weight triple.
type Policy = selection.Policy

// Strategy is the Rep(N_REP, N_MAXR) dynamic replication strategy.
type Strategy = replication.Strategy

// ReplicationConfig bundles the dynamic-replication tunables (B_TH,
// cooldown, speed, N_BF coverage, B_REV, destination selection).
type ReplicationConfig = replication.Config

// DestStrategy selects replication destinations (Random, LBF, Weighted).
type DestStrategy = replication.DestStrategy

// Scenario is the allocation discipline (Soft or Firm real-time).
type Scenario = qos.Scenario

// ExperimentOptions scales the paper-evaluation runners.
type ExperimentOptions = experiments.Options

// ExperimentResult is one regenerated table or figure.
type ExperimentResult = experiments.Result

// Canonical selection policies (paper Tables I-IV).
var (
	PolicyRandom   = selection.Random   // (0,0,0): uniform random
	PolicyRemOnly  = selection.RemOnly  // (1,0,0): remaining bandwidth
	PolicyRemOcc   = selection.RemOcc   // (1,0,1)
	PolicyRemTrend = selection.RemTrend // (1,1,0)
	PolicyFull     = selection.Full     // (1,1,1)
)

// QoS scenarios.
const (
	Soft = qos.Soft
	Firm = qos.Firm
)

// Destination-selection strategies (paper Tables VI-VII).
const (
	DestRandom   = replication.DestRandom
	DestLBF      = replication.DestLBF
	DestWeighted = replication.DestWeighted
)

// DefaultConfig returns the paper's standard experiment setup: the 16-RM
// heterogeneous topology, 1000 files × 3 static replicas, 256 users over
// 2 simulated hours, policy (1,0,0), soft real-time, static replication.
func DefaultConfig() Config { return cluster.DefaultConfig() }

// PaperTopology returns the evaluation's 16 RM capacities (RM1/RM9 =
// 128 Mbit/s, RM2/3/10/11 = 19 Mbit/s, the rest 18 Mbit/s).
func PaperTopology() []units.BytesPerSec { return cluster.PaperTopology() }

// Build wires a cluster without running it (inspect, then call Run).
func Build(cfg Config) (*Cluster, error) { return cluster.Build(cfg) }

// Run builds and executes one configuration, returning its metrics.
func Run(cfg Config) (*Results, error) { return cluster.RunConfig(cfg) }

// ParsePolicy parses "(1,0,0)" into a Policy.
func ParsePolicy(s string) (Policy, error) { return selection.ParsePolicy(s) }

// StaticReplication is the static-replication strategy (no dynamic copies).
func StaticReplication() Strategy { return replication.Static() }

// Rep constructs the Rep(nRep, nMaxR) strategy; Rep(1,3) is the paper's
// recommended practical configuration.
func Rep(nRep, nMaxR int) Strategy { return replication.Rep(nRep, nMaxR) }

// BaselineReplication is the paper's baseline dynamic strategy Rep(3,8).
func BaselineReplication() Strategy { return replication.Baseline() }

// ReplicationDefaults returns the evaluation's fixed replication
// parameters (B_TH = 20%, 60 s cooldown, 1.8 Mbit/s transfers, N_BF
// covering 50% of accesses, B_REV = 2×bitrate, Random destinations).
func ReplicationDefaults(s Strategy) ReplicationConfig { return replication.DefaultConfig(s) }

// RunExperiment regenerates one of the paper's tables or figures by id
// ("table1" … "table7", "fig4" … "fig7").
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists the experiment identifiers in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// PaperScale returns the full-size experiment options (2 h horizon,
// 64-256 user sweeps); QuickScale is a reduced variant for smoke runs.
func PaperScale() ExperimentOptions { return experiments.Defaults() }

// QuickScale returns reduced-scale experiment options.
func QuickScale() ExperimentOptions { return experiments.Quick() }

// Mbps converts megabits per second into the bandwidth unit used across
// the API.
func Mbps(v float64) units.BytesPerSec { return units.Mbps(v) }
